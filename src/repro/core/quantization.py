"""Uniform quantization of floating-point tensors (paper Eq. 2).

QGTC quantizes a 32-bit float :math:`\\alpha` to a ``q``-bit unsigned integer

.. math::

    \\alpha^{(q)} = \\left\\lfloor \\frac{\\alpha - \\alpha_{min}}{scale}
                    \\right\\rfloor,
    \\qquad scale = \\frac{|\\alpha_{max} - \\alpha_{min}|}{2^q}

where ``alpha_min`` / ``alpha_max`` are empirical bounds (per tensor by
default).  The quantized code lives in ``[0, 2^q - 1]`` so every code can be
bit-decomposed into exactly ``q`` binary planes — the representation the
Tensor Core emulator consumes.

This module provides the forward quantizer, the dequantizer used to read
results back into float space, and a :class:`QuantConfig` record that GNN
layers carry around so the whole pipeline agrees on bounds and bitwidths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import BitwidthError, ConfigError

__all__ = [
    "MAX_BITS",
    "QuantConfig",
    "QuantParams",
    "quantize",
    "dequantize",
    "quantization_error",
    "calibrate",
]

#: Largest supported bitwidth.  32-bit codes are stored in int64 during
#: arithmetic so the bit-serial GEMM cannot overflow.
MAX_BITS = 32


def _check_bits(bits: int) -> int:
    if not isinstance(bits, (int, np.integer)):
        raise BitwidthError(f"bitwidth must be an int, got {type(bits).__name__}")
    bits = int(bits)
    if not 1 <= bits <= MAX_BITS:
        raise BitwidthError(f"bitwidth must be in [1, {MAX_BITS}], got {bits}")
    return bits


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters for one tensor.

    Attributes
    ----------
    bits:
        Number of bits of the integer code.
    alpha_min:
        Empirical lower bound mapped to code ``0``.
    scale:
        Width of one quantization bucket, ``(alpha_max - alpha_min) / 2**bits``.
    """

    bits: int
    alpha_min: float
    scale: float

    def __post_init__(self) -> None:
        _check_bits(self.bits)
        if not np.isfinite(self.alpha_min):
            raise ConfigError(f"alpha_min must be finite, got {self.alpha_min}")
        if not (np.isfinite(self.scale) and self.scale > 0):
            raise ConfigError(f"scale must be positive and finite, got {self.scale}")

    @property
    def levels(self) -> int:
        """Number of representable codes, ``2**bits``."""
        return 1 << self.bits

    @property
    def alpha_max(self) -> float:
        """Upper bound of the representable float range."""
        return self.alpha_min + self.scale * self.levels


@dataclass(frozen=True)
class QuantConfig:
    """Bitwidth configuration of a quantized GNN.

    The adjacency matrix is always 1-bit (edge present / absent).  Node
    embeddings use ``feature_bits`` and layer weights use ``weight_bits``;
    the paper's experiments set both to the same value (2/4/8/16/32).
    """

    feature_bits: int = 4
    weight_bits: int = 4
    adjacency_bits: int = field(default=1)
    #: Calibration percentile for (alpha_min, alpha_max); 0.0 means exact
    #: min/max, 0.01 clips 1% outliers on each side.
    clip_quantile: float = 0.0

    def __post_init__(self) -> None:
        _check_bits(self.feature_bits)
        _check_bits(self.weight_bits)
        if self.adjacency_bits != 1:
            raise ConfigError(
                "QGTC stores the adjacency matrix in exactly 1 bit; got "
                f"adjacency_bits={self.adjacency_bits}"
            )
        if not 0.0 <= self.clip_quantile < 0.5:
            raise ConfigError(
                f"clip_quantile must be in [0, 0.5), got {self.clip_quantile}"
            )

    @property
    def is_full_precision(self) -> bool:
        """True when both operands use the fp32-equivalent 32-bit path."""
        return self.feature_bits >= MAX_BITS and self.weight_bits >= MAX_BITS


def calibrate(
    values: np.ndarray,
    bits: int,
    *,
    clip_quantile: float = 0.0,
    alpha_min: float | None = None,
    alpha_max: float | None = None,
) -> QuantParams:
    """Derive :class:`QuantParams` from data.

    Parameters
    ----------
    values:
        Sample tensor used to estimate the representable range.
    bits:
        Target bitwidth.
    clip_quantile:
        Fraction of outliers to clip on each side when estimating bounds.
    alpha_min, alpha_max:
        Explicit bounds; when given they override the data-driven estimate
        (the paper lets "users or application settings" pick them).
    """
    bits = _check_bits(bits)
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigError("cannot calibrate quantization on an empty tensor")
    if alpha_min is None:
        alpha_min = float(
            np.quantile(arr, clip_quantile) if clip_quantile > 0 else arr.min()
        )
    if alpha_max is None:
        alpha_max = float(
            np.quantile(arr, 1 - clip_quantile) if clip_quantile > 0 else arr.max()
        )
    if alpha_max <= alpha_min:
        # Degenerate (constant) tensor: use a unit range so codes are all 0.
        alpha_max = alpha_min + 1.0
    scale = (alpha_max - alpha_min) / (1 << bits)
    return QuantParams(bits=bits, alpha_min=alpha_min, scale=scale)


def quantize(
    values: np.ndarray,
    params: QuantParams | None = None,
    *,
    bits: int | None = None,
    clip_quantile: float = 0.0,
) -> tuple[np.ndarray, QuantParams]:
    """Quantize a float tensor to unsigned integer codes (paper Eq. 2).

    Either pass pre-computed ``params`` or a ``bits`` count (in which case
    the bounds are calibrated from ``values``).  Codes are clipped into
    ``[0, 2**bits - 1]`` — Eq. 2 alone would map ``alpha == alpha_max`` to
    ``2**bits``, one past the top code, so the top bucket is closed.

    Returns
    -------
    (codes, params):
        ``codes`` is an ``int64`` array with the same shape as ``values``.
    """
    if params is None:
        if bits is None:
            raise ConfigError("quantize() needs either `params` or `bits`")
        params = calibrate(values, bits, clip_quantile=clip_quantile)
    arr = np.asarray(values, dtype=np.float64)
    codes = np.floor((arr - params.alpha_min) / params.scale)
    np.clip(codes, 0, params.levels - 1, out=codes)
    return codes.astype(np.int64), params


def dequantize(codes: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map integer codes back to (bucket-midpoint) float values.

    Using the bucket midpoint rather than its lower edge halves the worst
    case round-trip error and matches common uniform-quantizer practice.
    """
    codes = np.asarray(codes)
    return (codes.astype(np.float64) + 0.5) * params.scale + params.alpha_min


def quantization_error(values: np.ndarray, bits: int) -> float:
    """Mean absolute round-trip error of quantizing ``values`` at ``bits``.

    A convenience used by tests and the accuracy experiment to sanity-check
    that error shrinks monotonically (in expectation) as bits grow.
    """
    codes, params = quantize(values, bits=bits)
    recon = dequantize(codes, params)
    return float(np.mean(np.abs(np.asarray(values, dtype=np.float64) - recon)))
