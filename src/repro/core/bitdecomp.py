"""Bit decomposition and recomposition of integer codes (paper §3.1).

QGTC's central algorithmic idea is that any ``q``-bit integer tensor can be
split into ``q`` binary *bit planes* — plane ``i`` holds bit ``i`` of every
element — and that arithmetic between quantized tensors reduces to 1-bit
arithmetic between planes followed by shift-and-add (paper Eq. 5/6).

Planes are stored LSB-first: ``planes[0]`` is the 2^0 plane.  This matches
Algorithm 1 in the paper where ``X_list[i]`` contributes at bit position
``i``.
"""

from __future__ import annotations

import numpy as np

from ..errors import BitwidthError, ShapeError
from .quantization import MAX_BITS

__all__ = ["bit_decompose", "bit_compose", "required_bits"]


def required_bits(codes: np.ndarray) -> int:
    """Smallest bitwidth that can represent every value in ``codes``.

    Returns 1 for an all-zero tensor (a 0-bit tensor is not a thing in the
    TC pipeline — the adjacency matrix of an empty graph still occupies one
    plane).
    """
    arr = np.asarray(codes)
    if arr.size == 0:
        return 1
    top = int(arr.max(initial=0))
    if int(arr.min(initial=0)) < 0:
        raise BitwidthError("bit decomposition requires non-negative codes")
    return max(1, int(top).bit_length())


def bit_decompose(codes: np.ndarray, bits: int) -> np.ndarray:
    """Split integer codes into ``bits`` binary planes, LSB first.

    Parameters
    ----------
    codes:
        Non-negative integer array; every element must fit in ``bits`` bits.
    bits:
        Number of planes to produce.

    Returns
    -------
    ``uint8`` array of shape ``(bits, *codes.shape)`` with values in {0, 1}.
    """
    if not 1 <= bits <= MAX_BITS:
        raise BitwidthError(f"bits must be in [1, {MAX_BITS}], got {bits}")
    arr = np.asarray(codes)
    if arr.dtype.kind not in "iu":
        if arr.dtype.kind == "f" and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise BitwidthError(
                f"bit_decompose expects an integer array, got dtype {arr.dtype}"
            )
    arr = arr.astype(np.int64, copy=False)
    if arr.size:
        lo = int(arr.min())
        hi = int(arr.max())
        if lo < 0:
            raise BitwidthError("bit decomposition requires non-negative codes")
        if hi >= (1 << bits):
            raise BitwidthError(
                f"value {hi} does not fit in {bits} bits (max {(1 << bits) - 1})"
            )
    shifts = np.arange(bits, dtype=np.int64).reshape((bits,) + (1,) * arr.ndim)
    planes = (arr[None, ...] >> shifts) & 1
    return planes.astype(np.uint8)


def bit_compose(planes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bit_decompose`: shift-and-add the planes.

    Accepts any array whose leading axis indexes planes (LSB first) and
    whose values are {0, 1}.  Returns ``int64``.
    """
    arr = np.asarray(planes)
    if arr.ndim < 1:
        raise ShapeError("bit_compose expects at least one plane axis")
    bits = arr.shape[0]
    if bits > MAX_BITS:
        raise BitwidthError(f"too many planes: {bits} > {MAX_BITS}")
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise BitwidthError("bit planes must be binary (0/1)")
    weights = (np.int64(1) << np.arange(bits, dtype=np.int64)).reshape(
        (bits,) + (1,) * (arr.ndim - 1)
    )
    return np.sum(arr.astype(np.int64) * weights, axis=0)
