"""Word-level bit primitives used by the packed GEMM and the TC emulator.

Everything here operates on ``uint32`` *words* — the storage unit of the
3D-stacked bit compression (paper §4.2).  The two operations the 1-bit
Tensor Core path needs are

* ``AND`` between two packed vectors (elementwise multiply of bits), and
* ``popcount`` (the reduction), mirroring paper Eq. 7:
  ``ans = popcnt(v_i & v_j)``.

NumPy >= 2.0 ships a hardware-backed ``np.bitwise_count``; we expose a thin
wrapper plus a pure-table fallback so the semantics are pinned by tests
rather than by whichever NumPy happens to be installed.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = [
    "WORD_BITS",
    "popcount",
    "popcount_table",
    "and_popcount",
    "xor_popcount",
    "ballot_any",
]

#: Bits per storage word.  QGTC packs into int32/uint32 for PyTorch interop.
WORD_BITS = 32

#: 256-entry lookup table: popcount of every byte value.
_POPCOUNT8 = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of an unsigned integer array.

    Uses NumPy's vectorized ``bitwise_count`` when available (NumPy >= 2.0),
    otherwise falls back to the byte-table implementation.
    """
    arr = np.asarray(words)
    if arr.dtype.kind != "u":
        if arr.dtype.kind == "i":
            arr = arr.view(arr.dtype.str.replace("i", "u"))
        else:
            raise ShapeError(f"popcount expects an integer array, got {arr.dtype}")
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(arr)
    return popcount_table(arr)


def popcount_table(words: np.ndarray) -> np.ndarray:
    """Reference popcount via a byte lookup table.

    Slower than :func:`popcount` but dependency-free; kept public so the
    test suite can cross-check the fast path.
    """
    arr = np.ascontiguousarray(words)
    if arr.dtype.kind == "i":
        arr = arr.view(arr.dtype.str.replace("i", "u"))
    nbytes = arr.dtype.itemsize
    as_bytes = arr.view(np.uint8).reshape(arr.shape + (nbytes,))
    return _POPCOUNT8[as_bytes].sum(axis=-1, dtype=np.uint32).astype(arr.dtype)


def and_popcount(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``popcount(a & b)`` reduced over the last axis.

    This is the 1-bit dot product of paper Eq. 7: with both vectors packed
    along their K dimension, the number of positions where both bits are 1
    equals the integer dot product of the binary vectors.

    Broadcasting follows NumPy rules on all axes except the last, which must
    match (same number of K-words).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[-1] != b.shape[-1]:
        raise ShapeError(
            f"packed K-word axes differ: {a.shape[-1]} vs {b.shape[-1]}"
        )
    return popcount(a & b).sum(axis=-1, dtype=np.int64)


def xor_popcount(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``popcount(a ^ b)`` reduced over the last axis.

    The XOR variant underlies {-1, +1} binary networks (paper §2.3 mentions
    TC exposes both XOR and AND).  Provided for completeness and used by the
    binary-GNN example.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[-1] != b.shape[-1]:
        raise ShapeError(
            f"packed K-word axes differ: {a.shape[-1]} vs {b.shape[-1]}"
        )
    return popcount(a ^ b).sum(axis=-1, dtype=np.int64)


def ballot_any(words: np.ndarray, axis: int | tuple[int, ...] | None = None) -> np.ndarray:
    """Emulate the warp ``__ballot_sync(val > 0)`` reduction (paper §4.3).

    Returns a boolean array that is True where *any* word along ``axis`` is
    non-zero — exactly the all-zero-tile test QGTC's zero-tile jumping uses:
    8 threads OR their 4 words each, then a warp ballot combines the 8 lane
    predicates.
    """
    arr = np.asarray(words)
    return (arr != 0).any(axis=axis)
