"""3D-stacked bit compression (paper §4.2).

A quantized ``q``-bit matrix is stored as ``q`` binary planes stacked along a
*z* axis, each plane packed into 32-bit little-endian words along the GEMM
reduction dimension ``K``:

* **column-wise compression** for the left operand ``A`` (shape ``M x K``):
  each *row* of ``A`` is packed along ``K`` so the kernel streams coalesced
  words while walking a row.  Padded to ``PAD8(M) x PAD128(K)`` (or
  ``PAD128(M)`` when the result feeds the next layer as a new ``A``).
* **row-wise compression** for the right operand ``B`` (shape ``K x N``):
  each *column* of ``B`` is packed along ``K``.  Padded to
  ``PAD128(K) x PAD8(N)`` (or ``PAD128(N)`` for hidden layers).

Both layouts store, for logical vector ``i``, the word array
``words[plane, i, w]`` where bit ``j`` of word ``w`` is element ``32*w + j``
of the vector (little-endian, as in the paper's Figure 4).  The paper-order
shape for row-wise compression — ``bits x K/32 x N`` — is the transpose of
our storage and available via :meth:`PackedBits.paper_order`.

Padding uses zeros, which are exact for AND+popcount arithmetic: padded
positions contribute nothing to any dot product, and padded output rows /
columns are sliced away on unpack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from ..errors import PackingError, ShapeError
from .bitdecomp import bit_compose, bit_decompose
from .bitops import WORD_BITS

__all__ = [
    "TC_M",
    "TC_N",
    "TC_K",
    "pad_to",
    "PackedBits",
    "pack_bit_planes",
    "pack_matrix",
    "recensus_tiles",
    "tile_nonzero_mask",
    "unpack_bit_planes",
    "unpack_matrix",
]

#: 1-bit WMMA tile dimensions on Turing/Ampere: ``m8 n8 k128``.
TC_M = 8
TC_N = 8
TC_K = 128

Layout = Literal["col", "row"]


def pad_to(n: int, multiple: int) -> int:
    """Round ``n`` up to the next multiple of ``multiple`` (PAD8 / PAD128)."""
    if n < 0 or multiple <= 0:
        raise ShapeError(f"cannot pad {n} to a multiple of {multiple}")
    return ((n + multiple - 1) // multiple) * multiple


@dataclass(frozen=True)
class PackedBits:
    """A bit-compressed matrix: ``bits`` planes of packed 32-bit words.

    Attributes
    ----------
    words:
        ``uint32`` array of shape ``(bits, padded_vectors, k_words)``;
        ``words[p, i, w]`` packs elements ``[32w, 32w+32)`` of logical
        vector ``i`` (a row of ``A`` for column-wise layout, a column of
        ``B`` for row-wise layout) at bit position ``p``.
    bits:
        Number of bit planes (the quantization bitwidth).
    layout:
        ``"col"`` (left operand, packed along K per row) or ``"row"``
        (right operand, packed along K per column).
    logical_vectors:
        Unpadded count of logical vectors (``M`` for col, ``N`` for row).
    logical_k:
        Unpadded reduction length ``K``.
    pad_vectors:
        The multiple the vector axis was padded to (8 or 128).
    """

    words: np.ndarray
    bits: int
    layout: Layout
    logical_vectors: int
    logical_k: int
    pad_vectors: int

    def __post_init__(self) -> None:
        if self.layout not in ("col", "row"):
            raise PackingError(f"unknown layout {self.layout!r}")
        if self.words.dtype != np.uint32:
            raise PackingError(f"packed words must be uint32, got {self.words.dtype}")
        if self.words.ndim != 3:
            raise PackingError(
                f"packed words must be (bits, vectors, kwords), got {self.words.shape}"
            )
        if self.words.shape[0] != self.bits:
            raise PackingError(
                f"plane count {self.words.shape[0]} != bits {self.bits}"
            )
        # Degenerate (empty) matrices still occupy one padded tile — the
        # same ``max(n, 1)`` rule :func:`pack_bit_planes` pads with.
        expected_vectors = pad_to(max(self.logical_vectors, 1), self.pad_vectors)
        if self.words.shape[1] != expected_vectors:
            raise PackingError(
                f"padded vector axis {self.words.shape[1]} != "
                f"PAD{self.pad_vectors}({self.logical_vectors}) = {expected_vectors}"
            )
        expected_words = pad_to(max(self.logical_k, 1), TC_K) // WORD_BITS
        if self.words.shape[2] != expected_words:
            raise PackingError(
                f"k-word axis {self.words.shape[2]} != "
                f"PAD128({self.logical_k})/32 = {expected_words}"
            )

    # ------------------------------------------------------------------ #
    # Shape metadata
    # ------------------------------------------------------------------ #
    @property
    def padded_vectors(self) -> int:
        """Vector count after PAD8/PAD128 padding."""
        return self.words.shape[1]

    @property
    def k_words(self) -> int:
        """Number of 32-bit words along the packed K axis."""
        return self.words.shape[2]

    @property
    def padded_k(self) -> int:
        """Reduction length after PAD128 padding."""
        return self.k_words * WORD_BITS

    @property
    def logical_shape(self) -> tuple[int, int]:
        """Unpadded matrix shape: ``(M, K)`` for col, ``(K, N)`` for row."""
        if self.layout == "col":
            return (self.logical_vectors, self.logical_k)
        return (self.logical_k, self.logical_vectors)

    @property
    def nbytes(self) -> int:
        """Bytes of packed storage — what travels over the emulated PCIe bus."""
        return self.words.nbytes

    def plane(self, index: int) -> np.ndarray:
        """Packed words of one bit plane, shape ``(padded_vectors, k_words)``."""
        if not 0 <= index < self.bits:
            raise PackingError(f"plane {index} out of range [0, {self.bits})")
        return self.words[index]

    def paper_order(self) -> np.ndarray:
        """Words in the paper's published axis order.

        Column-wise: ``bits x PAD(M) x K/32`` (same as storage).
        Row-wise: ``bits x K/32 x PAD(N)`` (transpose of storage).
        """
        if self.layout == "col":
            return self.words
        return self.words.transpose(0, 2, 1)

    # ------------------------------------------------------------------ #
    # Round-trip
    # ------------------------------------------------------------------ #
    def to_planes(self) -> np.ndarray:
        """Unpack to binary planes of the *logical* matrix."""
        return unpack_bit_planes(self)

    def to_codes(self) -> np.ndarray:
        """Unpack and recompose to the original integer codes."""
        return unpack_matrix(self)


def _pack_planes_along_last(planes: np.ndarray) -> np.ndarray:
    """Pack a ``(bits, vectors, K)`` binary array along K into uint32 words."""
    bits, vectors, k = planes.shape
    padded_k = pad_to(max(k, 1), TC_K)
    if padded_k != k:
        planes = np.pad(planes, ((0, 0), (0, 0), (0, padded_k - k)))
    packed_bytes = np.packbits(planes, axis=-1, bitorder="little")
    # 4 consecutive little-endian bytes form one little-endian uint32, so bit
    # j of word w is element 32w + j — the layout of paper Figure 4.
    return (
        np.ascontiguousarray(packed_bytes)
        .view(np.uint32)
        .reshape(bits, vectors, padded_k // WORD_BITS)
    )


def pack_bit_planes(
    planes: np.ndarray,
    layout: Layout = "col",
    *,
    pad_vectors: int = TC_M,
) -> PackedBits:
    """Pack pre-decomposed binary planes into a :class:`PackedBits`.

    Parameters
    ----------
    planes:
        ``(bits, M, K)`` for ``layout="col"`` — planes of the left operand —
        or ``(bits, K, N)`` for ``layout="row"`` — planes of the right
        operand.
    layout:
        Which GEMM side this matrix sits on (see module docstring).
    pad_vectors:
        8 for output-layer operands, 128 when the GEMM result becomes the
        next layer's left operand (paper §4.2 hidden-layer padding rule).
    """
    arr = np.asarray(planes, dtype=np.uint8)
    if arr.ndim != 3:
        raise ShapeError(f"planes must be 3-D (bits, rows, cols), got {arr.shape}")
    if arr.size and arr.max() > 1:
        raise PackingError("bit planes must be binary (0/1)")
    if pad_vectors not in (TC_M, TC_K):
        raise PackingError(f"pad_vectors must be 8 or 128, got {pad_vectors}")
    bits = arr.shape[0]
    if layout == "col":
        vec_planes = arr  # (bits, M, K): rows are the logical vectors
        logical_vectors, logical_k = arr.shape[1], arr.shape[2]
    elif layout == "row":
        vec_planes = arr.transpose(0, 2, 1)  # (bits, N, K): columns of B
        logical_vectors, logical_k = arr.shape[2], arr.shape[1]
    else:
        raise PackingError(f"unknown layout {layout!r}")
    padded_vectors = pad_to(max(logical_vectors, 1), pad_vectors)
    if padded_vectors != logical_vectors:
        vec_planes = np.pad(
            vec_planes, ((0, 0), (0, padded_vectors - logical_vectors), (0, 0))
        )
    words = _pack_planes_along_last(np.ascontiguousarray(vec_planes))
    return PackedBits(
        words=words,
        bits=bits,
        layout=layout,
        logical_vectors=max(logical_vectors, 0),
        logical_k=logical_k,
        pad_vectors=pad_vectors,
    )


def pack_matrix(
    codes: np.ndarray,
    bits: int,
    layout: Layout = "col",
    *,
    pad_vectors: int = TC_M,
) -> PackedBits:
    """Bit-decompose an integer matrix and pack it in one call."""
    arr = np.asarray(codes)
    if arr.ndim != 2:
        raise ShapeError(f"pack_matrix expects a 2-D matrix, got shape {arr.shape}")
    planes = bit_decompose(arr, bits)
    return pack_bit_planes(planes, layout, pad_vectors=pad_vectors)


def unpack_bit_planes(packed: PackedBits) -> np.ndarray:
    """Unpack to binary planes of the logical (unpadded) matrix.

    Returns ``(bits, M, K)`` for column-wise layout and ``(bits, K, N)`` for
    row-wise layout.
    """
    words = np.ascontiguousarray(packed.words)
    as_bytes = words.view(np.uint8).reshape(
        packed.bits, packed.padded_vectors, packed.k_words * 4
    )
    planes = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    planes = planes[:, : packed.logical_vectors, : packed.logical_k]
    if packed.layout == "row":
        planes = planes.transpose(0, 2, 1)
    return planes


def unpack_matrix(packed: PackedBits) -> np.ndarray:
    """Unpack and shift-add back to the original integer codes (int64)."""
    return bit_compose(unpack_bit_planes(packed))


def tile_nonzero_mask(plane_words: np.ndarray) -> np.ndarray:
    """Boolean mask of non-zero ``8 x 128``-bit tiles of a packed plane.

    The vectorized form of the paper's §4.3 zero-tile ballot: 8 threads each
    OR their ``uint4`` (4 consecutive words = one tile row), and a warp
    ballot combines the 8 lane predicates — a zero ballot marks a tile the
    kernel can jump.  Lives in ``core`` because both the ``sparse`` host
    engine (:func:`repro.core.bitgemm.bmm_plane_packed_sparse`) and the TC
    emulator's jump logic (:mod:`repro.tc.zerotile`) consume it.

    Parameters
    ----------
    plane_words:
        Packed 1-bit plane, shape ``(padded_vectors, k_words)`` uint32 with
        ``padded_vectors % 8 == 0`` and ``k_words % 4 == 0`` (guaranteed by
        PAD8/PAD128 packing).

    Returns
    -------
    ``(padded_vectors // 8, k_words // 4)`` boolean array; ``True`` marks a
    tile that contains at least one set bit and must be processed.
    """
    if plane_words.ndim != 2:
        raise ShapeError("expected a 2-D packed plane")
    rows, kwords = plane_words.shape
    if rows % 8 or kwords % 4:
        raise ShapeError(
            f"plane shape {plane_words.shape} is not a whole number of 8x128 tiles"
        )
    tiles = plane_words.reshape(rows // 8, 8, kwords // 4, 4)
    # Per-thread uint4 OR (axis -1), then the warp-ballot across the 8 rows
    # (axis 1): nonzero ballot == tile has an edge.
    per_row = np.bitwise_or.reduce(tiles, axis=-1)
    return np.bitwise_or.reduce(per_row, axis=1) != 0


def recensus_tiles(
    plane_words: np.ndarray,
    mask: np.ndarray,
    tiles: Iterable[tuple[int, int]],
) -> int:
    """Re-run the §4.3 zero-tile ballot for a *subset* of tiles, in place.

    The incremental counterpart of :func:`tile_nonzero_mask`: after an edge
    mutation flips bits inside a few ``8 x 128`` tiles, only those tiles need
    their ballot re-taken.  ``mask[tr, tc]`` is overwritten with the fresh
    ballot for every ``(tr, tc)`` in ``tiles``; untouched entries keep their
    previous census verdict.

    Parameters
    ----------
    plane_words:
        Packed 1-bit plane, shape ``(padded_vectors, k_words)`` uint32 —
        the same layout :func:`tile_nonzero_mask` consumes.
    mask:
        Writable boolean census of shape ``(padded_vectors//8, k_words//4)``,
        updated in place.
    tiles:
        Tile coordinates ``(row_tile, k_tile)`` to re-census.  Out-of-range
        coordinates raise :class:`~repro.errors.ShapeError`.

    Returns
    -------
    Number of tiles re-censused.
    """
    if plane_words.ndim != 2:
        raise ShapeError("expected a 2-D packed plane")
    rows, kwords = plane_words.shape
    if rows % 8 or kwords % 4:
        raise ShapeError(
            f"plane shape {plane_words.shape} is not a whole number of 8x128 tiles"
        )
    grid = (rows // 8, kwords // 4)
    if mask.shape != grid:
        raise ShapeError(f"census shape {mask.shape} != tile grid {grid}")
    coords = sorted(set((int(tr), int(tc)) for tr, tc in tiles))
    if not coords:
        return 0
    tr = np.fromiter((c[0] for c in coords), dtype=np.intp, count=len(coords))
    tc = np.fromiter((c[1] for c in coords), dtype=np.intp, count=len(coords))
    if (tr < 0).any() or (tr >= grid[0]).any() or (tc < 0).any() or (tc >= grid[1]).any():
        raise ShapeError(f"tile coordinate outside census grid {grid}")
    # Gather each dirty tile's 8x4 word block and re-ballot it.
    row_idx = tr[:, None, None] * 8 + np.arange(8, dtype=np.intp)[None, :, None]
    word_idx = tc[:, None, None] * 4 + np.arange(4, dtype=np.intp)[None, None, :]
    blocks = plane_words[row_idx, word_idx].reshape(len(coords), -1)
    mask[tr, tc] = blocks.any(axis=1)
    return len(coords)
