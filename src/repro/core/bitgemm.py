"""Any-bitwidth matrix multiplication via 1-bit composition (paper §3).

The product of an ``s``-bit matrix ``A`` and a ``t``-bit matrix ``B`` is
assembled from ``s * t`` one-bit GEMMs: plane ``i`` of ``A`` times plane
``j`` of ``B`` contributes at bit position ``i + j`` (paper Eq. 5/6 and
Algorithm 1):

.. math::

    C = \\sum_{i<s} \\sum_{j<t} \\mathrm{BMM}(A_i, B_j) \\ll (i + j)

Each 1-bit GEMM is an AND + popcount over the packed K dimension
(paper Eq. 7).  Two interchangeable engines compute it:

* ``"packed"`` — word-at-a-time ``popcount(a & b)`` on the uint32 storage,
  exactly what the emulated Tensor Core executes.  Memory-blocked.
* ``"blas"`` — unpack the planes to float32 and use BLAS ``matmul``.  Exact
  for any K below 2^24 (a 0/1 dot product is an integer that float32
  represents exactly) and much faster for large matrices.
* ``"sparse"`` — the host realization of the paper's §4.3 zero-tile
  jumping: census the ``8 x 128`` tiles of the left operand once, then
  compute only the non-zero ones (gather the surviving k-tiles of each
  row group, AND+popcount, scatter the row block back).  Bit-identical to
  ``"packed"`` because all-zero tiles contribute nothing to any AND+popcount
  dot product; much faster when the operand is tile-sparse — e.g. the
  block-diagonal adjacency of a coalesced serving batch, where roughly
  ``1/members`` of the tiles survive.
* ``"einsum"`` — bit-serial: unpack both operands to 0/1 planes and form
  every pairwise plane product in a single int64 ``np.einsum``
  contraction.  Exact for the low bitwidths it is registered for, and
  free of the per-plane-pair dispatch loop, which is where it can win on
  small products; mostly it widens the autotuner's search space
  (:mod:`repro.plan.autotune`).

All engines are tested against each other and against an int64 reference.

Engines are *registered objects*: each lives in the
:class:`~repro.plan.registry.BackendRegistry` as a
:class:`~repro.plan.registry.Backend` carrying capability metadata and a
cost pricer (see :mod:`repro.plan.backends` for the three built-ins).  The
``engine=`` parameters here are a compatibility shim over that registry:
they accept the literal names above, any custom backend name registered
via :func:`repro.plan.register_backend`, *or* an :data:`EngineSelector` —
a callable ``(m, k, n, bits_a, bits_b) -> name`` — so callers such as the
serving dispatcher (:mod:`repro.serving.dispatch`) can pick the engine per
product from a cost model instead of the built-in size threshold.  Pass
``registry=`` to resolve names against a non-default registry.

Scalar- and vector-level decomposed products (Eq. 5/6 verbatim) are included
as executable documentation; the test-suite uses them as independent oracles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence, Union

import numpy as np

from ..errors import BitwidthError, PackingError, ShapeError
from .bitdecomp import bit_decompose
from .bitops import and_popcount, popcount
from .bitpack import PackedBits, pack_matrix, tile_nonzero_mask

if TYPE_CHECKING:  # pragma: no cover - typing only (plan layers above core)
    from ..plan.registry import BackendRegistry

__all__ = [
    "ENGINE_NAMES",
    "Engine",
    "EngineSelector",
    "scalar_mul_decomposed",
    "vector_dot_decomposed",
    "bmm_plane_packed",
    "bmm_plane_packed_sparse",
    "bmm_plane_blas",
    "bitgemm_planes",
    "bitgemm",
    "bitgemm_codes",
    "matmul_int_reference",
    "reduce_plane_products",
]

#: A pluggable engine chooser: ``(m, k, n, bits_a, bits_b) -> engine name``.
EngineSelector = Callable[[int, int, int, int, int], str]
#: ``"auto"``, a registered backend name, or a selector callable.
Engine = Union[str, EngineSelector]

#: Names of the built-in backends (the default registry may hold more;
#: see :func:`repro.plan.register_backend`).
ENGINE_NAMES = ("packed", "blas", "sparse", "einsum")

#: Row-block size of the packed engine; caps the broadcast temporary at
#: roughly ``block * N * k_words * 4`` bytes.
_PACKED_ROW_BLOCK = 128


def scalar_mul_decomposed(a: int, b: int, bits_a: int, bits_b: int) -> int:
    """Multiply two quantized scalars by explicit bit composition (Eq. 5).

    Decomposes ``a`` into ``bits_a`` bits and ``b`` into ``bits_b`` bits,
    forms every cross term ``a_i * b_j`` and accumulates it at bit position
    ``i + j``.  Used as an oracle in tests; the array code below is the same
    arithmetic vectorized.
    """
    if a < 0 or b < 0:
        raise BitwidthError("decomposed multiply requires non-negative codes")
    if a >= (1 << bits_a) or b >= (1 << bits_b):
        raise BitwidthError("operand does not fit its declared bitwidth")
    total = 0
    for i in range(bits_a):
        for j in range(bits_b):
            total += ((a >> i) & 1) * ((b >> j) & 1) << (i + j)
    return total


def vector_dot_decomposed(
    va: np.ndarray, vb: np.ndarray, bits_a: int, bits_b: int
) -> int:
    """Dot product of two quantized vectors by bit composition (Eq. 6/7).

    For every pair of bit positions, the partial result is
    ``popcount(a_bits & b_bits)`` — the AND + popcount identity the Tensor
    Core path relies on.
    """
    va = np.asarray(va, dtype=np.int64)
    vb = np.asarray(vb, dtype=np.int64)
    if va.shape != vb.shape or va.ndim != 1:
        raise ShapeError(f"expected equal-length vectors, got {va.shape}, {vb.shape}")
    pa = bit_decompose(va, bits_a).astype(bool)
    pb = bit_decompose(vb, bits_b).astype(bool)
    total = 0
    for i in range(bits_a):
        for j in range(bits_b):
            total += int(np.count_nonzero(pa[i] & pb[j])) << (i + j)
    return total


def matmul_int_reference(a_codes: np.ndarray, b_codes: np.ndarray) -> np.ndarray:
    """Exact int64 matrix product — the oracle every engine must match."""
    a = np.asarray(a_codes, dtype=np.int64)
    b = np.asarray(b_codes, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"incompatible matmul shapes {a.shape} x {b.shape}")
    return a @ b


def bmm_plane_packed(
    a_words: np.ndarray, b_words: np.ndarray, *, row_block: int = _PACKED_ROW_BLOCK
) -> np.ndarray:
    """1-bit GEMM on packed words: ``C[m, n] = popcnt(Arow_m & Bcol_n)``.

    ``a_words`` is ``(M, W)``, ``b_words`` is ``(N, W)`` (both packed along
    K).  Blocked over rows of ``A`` so the broadcast temporary stays small —
    the software analogue of walking TC fragments tile by tile.
    """
    a_words = np.asarray(a_words)
    b_words = np.asarray(b_words)
    if a_words.ndim != 2 or b_words.ndim != 2:
        raise ShapeError("bmm_plane_packed expects 2-D packed word arrays")
    if a_words.shape[1] != b_words.shape[1]:
        raise ShapeError(
            f"packed K-word axes differ: {a_words.shape[1]} vs {b_words.shape[1]}"
        )
    m = a_words.shape[0]
    out = np.empty((m, b_words.shape[0]), dtype=np.int64)
    for start in range(0, m, row_block):
        stop = min(start + row_block, m)
        out[start:stop] = and_popcount(
            a_words[start:stop, None, :], b_words[None, :, :]
        )
    return out


def bmm_plane_packed_sparse(
    a_words: np.ndarray,
    b_words: np.ndarray,
    *,
    tile_mask: np.ndarray | None = None,
    row_block: int = _PACKED_ROW_BLOCK,
) -> np.ndarray:
    """1-bit GEMM that computes only the non-zero ``8 x 128`` tiles of A.

    Host analogue of the paper's §4.3 zero-tile jumping: the tile census of
    the left operand (``tile_nonzero_mask``, the vectorized warp ballot) is
    taken once, then only surviving tiles are multiplied.  Rows are gathered
    per tile-row group, the surviving k-tiles accumulated with AND+popcount,
    and the partial rows scattered back — skipped tiles contribute exactly
    zero to every dot product, so the result is bit-identical to
    :func:`bmm_plane_packed` at a fraction of the work proportional to the
    non-zero tile ratio.

    Parameters
    ----------
    a_words, b_words:
        Packed planes as in :func:`bmm_plane_packed`; ``a_words`` must
        additionally be a whole number of ``8 x 128`` tiles (always true
        for :class:`~repro.core.bitpack.PackedBits` planes).
    tile_mask:
        Optional precomputed ``(rows // 8, k_words // 4)`` boolean census of
        ``a_words`` (e.g. from a serving session's tile-mask cache).  Must
        be *conservative*: ``True`` wherever the tile has any set bit.
        Computed on the fly when omitted.
    """
    a_words = np.asarray(a_words)
    b_words = np.asarray(b_words)
    if a_words.ndim != 2 or b_words.ndim != 2:
        raise ShapeError("bmm_plane_packed_sparse expects 2-D packed word arrays")
    if a_words.shape[1] != b_words.shape[1]:
        raise ShapeError(
            f"packed K-word axes differ: {a_words.shape[1]} vs {b_words.shape[1]}"
        )
    rows, kwords = a_words.shape
    if tile_mask is None:
        tile_mask = tile_nonzero_mask(a_words)
    else:
        tile_mask = np.asarray(tile_mask)
        if rows % 8 or kwords % 4:
            raise ShapeError(
                f"plane shape {a_words.shape} is not a whole number of 8x128 tiles"
            )
        if tile_mask.shape != (rows // 8, kwords // 4):
            raise ShapeError(
                f"tile mask shape {tile_mask.shape} does not match the "
                f"{(rows // 8, kwords // 4)} tile grid of the plane"
            )
    return _sparse_plane_products(
        a_words, b_words[None, :, :], tile_mask, row_block=row_block
    )[0]


def _sparse_plane_products(
    a_words: np.ndarray,
    b_planes: np.ndarray,
    tile_mask: np.ndarray,
    *,
    row_block: int = _PACKED_ROW_BLOCK,
) -> np.ndarray:
    """One packed A plane against a stack of packed B planes, zero tiles
    skipped.

    ``b_planes`` is ``(bits_b, N, W)``; returns ``(bits_b, rows, N)``.
    Shared core of the ``sparse`` engine: computing every B bit plane inside
    one gather amortizes the per-call overhead that dominates tiny
    tile-group products (the host analogue of §4.4's load-A-once schedule).
    """
    rows, kwords = a_words.shape
    bits_b, n = b_planes.shape[0], b_planes.shape[1]
    out = np.zeros((bits_b, rows, n), dtype=np.int64)
    if not tile_mask.any() or n == 0:
        return out
    a_tiles = a_words.reshape(rows // 8, 8, kwords // 4, 4)
    b_tiles = b_planes.reshape(bits_b, n, kwords // 4, 4)
    # Tile rows sharing an active-tile set are processed in one gather — a
    # block-diagonal batch collapses to roughly one group per member.
    masks, inverse = np.unique(tile_mask, axis=0, return_inverse=True)
    for group, mask in enumerate(masks):
        active = np.flatnonzero(mask)
        if active.size == 0:
            continue
        awords = active.size * 4
        tile_rows = np.flatnonzero(inverse == group)
        # B laid out (bits_b, active-words, N) so the broadcast's contiguous
        # inner axis is N, not the (often tiny) surviving word count — the
        # short-axis layout is ~3x slower purely on loop overhead.
        b_sel = np.ascontiguousarray(
            b_tiles[:, :, active, :].reshape(bits_b, n, awords).transpose(0, 2, 1)
        )
        a_sel = a_tiles[tile_rows][:, :, active, :].reshape(-1, awords)
        row_idx = (tile_rows[:, None] * 8 + np.arange(8)[None, :]).ravel()
        # The broadcast temporary is (bits_b, block, active-words, N); pick
        # the row block so its footprint stays near the packed engine's
        # ``row_block x N x kwords`` budget.
        block = max(8, (row_block * kwords) // max(bits_b * awords, 1))
        for start in range(0, row_idx.size, block):
            stop = min(start + block, row_idx.size)
            out[:, row_idx[start:stop]] = popcount(
                a_sel[None, start:stop, :, None] & b_sel[:, None, :, :]
            ).sum(axis=2, dtype=np.int64)
    return out


def bmm_plane_blas(a_plane: np.ndarray, b_plane: np.ndarray) -> np.ndarray:
    """1-bit GEMM on *unpacked* planes via float32 BLAS.

    ``a_plane`` is ``(M, K)`` binary, ``b_plane`` is ``(N, K)`` binary
    (B's columns as rows).  A 0/1 dot product of length < 2^24 is exactly
    representable in float32, so the result is exact.
    """
    a = np.asarray(a_plane)
    b = np.asarray(b_plane)
    if a.shape[-1] != b.shape[-1]:
        raise ShapeError(f"K axes differ: {a.shape[-1]} vs {b.shape[-1]}")
    if a.shape[-1] >= (1 << 24):
        raise ShapeError("K too large for exact float32 accumulation")
    return (a.astype(np.float32) @ b.astype(np.float32).T).astype(np.int64)


def _resolve_backend(
    engine: Engine,
    a_packed: PackedBits,
    b_packed: PackedBits,
    registry: "BackendRegistry | None" = None,
):
    """Compatibility shim: resolve an ``engine=`` argument to a registered
    :class:`~repro.plan.registry.Backend` (imported lazily — the plan layer
    sits above core)."""
    from ..plan.ir import GemmSpec
    from ..plan.registry import default_registry, resolve_engine_name

    # None check, not truthiness: an empty caller registry (falsy — it
    # defines __len__) must not silently become the default backend set.
    if registry is None:
        registry = default_registry()
    spec = GemmSpec(
        m=a_packed.logical_vectors,
        k=a_packed.logical_k,
        n=b_packed.logical_vectors,
        bits_a=a_packed.bits,
        bits_b=b_packed.bits,
    )
    return registry.get(resolve_engine_name(engine, spec, registry))


def bitgemm_planes(
    a_packed: PackedBits,
    b_packed: PackedBits,
    *,
    engine: Engine = "auto",
    tile_masks: Sequence[np.ndarray] | None = None,
    registry: "BackendRegistry | None" = None,
) -> np.ndarray:
    """All pairwise 1-bit plane products of two packed matrices.

    Returns an int64 array of shape ``(bits_a, bits_b, M, N)`` where entry
    ``[i, j]`` is ``BMM(A_i, B_j)`` on the *logical* (unpadded) shapes.
    Exposed separately from :func:`bitgemm` because Algorithm 1 stores these
    partial bit-matrices before the shift-add reduction, and the kernel
    emulator reuses this decomposition for its cross-bit/cross-tile
    schedules.

    Dispatches to a registered backend (:mod:`repro.plan.backends` holds
    the built-ins) resolved from ``engine``.  ``tile_masks`` optionally
    supplies one precomputed non-zero-tile census per A plane (e.g. from a
    serving session's tile-mask cache); consumed by backends whose caps
    declare ``consumes_tile_masks`` (the ``sparse`` engine), ignored by
    the others.
    """
    if a_packed.layout != "col":
        raise PackingError("left operand must use column-wise compression")
    if b_packed.layout != "row":
        raise PackingError("right operand must use row-wise compression")
    if a_packed.logical_k != b_packed.logical_k:
        raise ShapeError(
            f"reduction dims differ: A has K={a_packed.logical_k}, "
            f"B has K={b_packed.logical_k}"
        )
    if tile_masks is not None and len(tile_masks) != a_packed.bits:
        raise ShapeError(
            f"tile_masks must have {a_packed.bits} entries (one per A plane), "
            f"got {len(tile_masks)}"
        )
    backend = _resolve_backend(engine, a_packed, b_packed, registry)
    return backend.run_planes(a_packed, b_packed, tile_masks)


def reduce_plane_products(partial: np.ndarray) -> np.ndarray:
    """Shift-add a ``(bits_a, bits_b, M, N)`` plane-product stack into the
    exact int64 GEMM result (the reduction step of Algorithm 1)."""
    bits_a, bits_b = partial.shape[0], partial.shape[1]
    shifts = np.arange(bits_a)[:, None] + np.arange(bits_b)[None, :]
    weights = (np.int64(1) << shifts.astype(np.int64))[:, :, None, None]
    return np.sum(partial * weights, axis=(0, 1), dtype=np.int64)


def bitgemm(
    a_packed: PackedBits,
    b_packed: PackedBits,
    *,
    engine: Engine = "auto",
    tile_masks: Sequence[np.ndarray] | None = None,
    registry: "BackendRegistry | None" = None,
) -> np.ndarray:
    """Any-bitwidth GEMM: shift-add all plane products (Algorithm 1).

    Returns the exact int64 product of the underlying integer matrices,
    shape ``(M, N)``.  ``tile_masks`` forwards precomputed per-plane tile
    censuses to the ``sparse`` engine (see :func:`bitgemm_planes`).
    """
    partial = bitgemm_planes(
        a_packed, b_packed, engine=engine, tile_masks=tile_masks, registry=registry
    )
    return reduce_plane_products(partial)


def bitgemm_codes(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    bits_a: int,
    bits_b: int,
    *,
    engine: Engine = "auto",
    registry: "BackendRegistry | None" = None,
) -> np.ndarray:
    """Convenience wrapper: decompose, pack, multiply in one call."""
    a_packed = pack_matrix(a_codes, bits_a, layout="col")
    b_packed = pack_matrix(b_codes, bits_b, layout="row")
    return bitgemm(a_packed, b_packed, engine=engine, registry=registry)
