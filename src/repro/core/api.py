"""Public bit-Tensor computation API (paper §5).

QGTC's PyTorch extension exposes two GEMM entry points:

* ``bitMM2Int(C, A, B, bit_A, bit_B)`` — any-bitwidth matrix multiply that
  accumulates into a full int32 tensor (used at the output layer, where the
  softmax needs full precision), and
* ``bitMM2Bit(C, A, B, bit_A, bit_B, bit_C)`` — the same multiply whose
  result is immediately requantized to ``bit_C`` bits and re-encoded as a
  bit-Tensor (used between hidden layers, the fused path of §4.5).

We reproduce both with NumPy in/out, returning results instead of writing
into a preallocated ``C`` (the CUDA calling convention does not translate to
NumPy idiom; the arithmetic is identical).

Every entry point takes an ``engine`` argument — ``"auto"``, any backend
name registered in the :class:`~repro.plan.registry.BackendRegistry`
(built-ins: ``"packed"``/``"blas"``/``"sparse"``), or an
:data:`~repro.core.bitgemm.EngineSelector` callable that picks the engine
per product from the GEMM shape — the hook the serving layer
(:mod:`repro.serving`) uses to dispatch requests through its cost model.
The string/callable form is a compatibility shim over the registry; pass
``registry=`` to resolve against a non-default one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import BitwidthError, ShapeError
from .bitgemm import Engine, EngineSelector, bitgemm
from .bittensor import BitTensor, requantize_codes, to_bit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..plan.registry import BackendRegistry

__all__ = [
    "Engine",
    "EngineSelector",
    "bit_mm_to_int",
    "bit_mm_to_bit",
    "bitMM2Int",
    "bitMM2Bit",
]


def _check_operands(a: BitTensor, b: BitTensor) -> None:
    if not isinstance(a, BitTensor) or not isinstance(b, BitTensor):
        raise ShapeError("bitMM operands must be BitTensor instances")
    if a.layout != "col":
        raise ShapeError(
            "left operand must be column-wise compressed (layout='col'); "
            "use BitTensor.with_layout('col')"
        )
    if b.layout != "row":
        raise ShapeError(
            "right operand must be row-wise compressed (layout='row'); "
            "use BitTensor.with_layout('row')"
        )
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")


def bit_mm_to_int(
    a: BitTensor,
    b: BitTensor,
    *,
    engine: Engine = "auto",
    registry: "BackendRegistry | None" = None,
) -> np.ndarray:
    """Any-bitwidth GEMM with full-precision (int64) output.

    Equivalent of the paper's ``bitMM2Int``: every 1-bit plane product is
    accumulated with its shift weight into a full-width integer result.
    """
    _check_operands(a, b)
    return bitgemm(a.packed, b.packed, engine=engine, registry=registry)


def bit_mm_to_bit(
    a: BitTensor,
    b: BitTensor,
    bit_c: int,
    *,
    layout_c: str = "col",
    pad_vectors_c: int = 128,
    engine: Engine = "auto",
    registry: "BackendRegistry | None" = None,
) -> BitTensor:
    """Any-bitwidth GEMM whose output is requantized to ``bit_c`` bits.

    Equivalent of the paper's ``bitMM2Bit``.  The hidden-layer convention
    packs the result column-wise with PAD128 so it can serve as the next
    layer's left operand without repadding (paper §4.2 last paragraph).
    """
    if bit_c < 1 or bit_c > 32:
        raise BitwidthError(f"bit_C must be in [1, 32], got {bit_c}")
    full = bit_mm_to_int(a, b, engine=engine, registry=registry)
    codes = requantize_codes(full, bit_c)
    return to_bit(codes, bit_c, layout=layout_c, pad_vectors=pad_vectors_c)


# Paper-style aliases ----------------------------------------------------- #
#: Alias matching the published API name ``bitMM2Int``.
bitMM2Int = bit_mm_to_int
#: Alias matching the published API name ``bitMM2Bit``.
bitMM2Bit = bit_mm_to_bit
