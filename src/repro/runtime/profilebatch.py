"""Batch profiling: measure once, model many configurations.

A Figure 7 sweep times six bitwidths on the same partitioned dataset.  The
only data-dependent inputs to the cost model are the adjacency tile census
(how many 8x128 tiles are non-zero after batching) and the edge counts —
both independent of bitwidth.  :func:`profile_batches` packs each batch's
adjacency once and records those statistics; every configuration is then
modeled from the profiles in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.bitpack import TC_K, TC_M, pad_to, tile_nonzero_mask
from ..errors import ShapeError
from ..graph.batching import Subgraph, SubgraphBatch, batch_subgraphs

__all__ = ["BatchProfile", "profile_batch", "profile_batches"]


@dataclass(frozen=True)
class BatchProfile:
    """Bitwidth-independent statistics of one subgraph batch.

    ``mt``/``kt`` describe the adjacency tile grid (rows padded to 8,
    columns to 128); ``nnz_tiles`` is the measured non-zero tile count the
    zero-tile-jumping kernel processes; ``nnz_adj`` counts set bits of the
    batched adjacency including self loops (what SpMM baselines traverse).
    """

    num_nodes: int
    num_edges: int
    nnz_adj: int
    mt: int
    kt: int
    nnz_tiles: int

    @property
    def total_tiles(self) -> int:
        return self.mt * self.kt

    @property
    def nonzero_tile_fraction(self) -> float:
        """Figure 8's metric: fraction of tiles a jumping kernel processes."""
        if self.total_tiles == 0:
            return 0.0
        return self.nnz_tiles / self.total_tiles

    @property
    def adjacency_density(self) -> float:
        """Set-bit density of the batched adjacency (with self loops)."""
        if self.num_nodes == 0:
            return 0.0
        return self.nnz_adj / (self.num_nodes * self.num_nodes)


def profile_batch(batch: SubgraphBatch, *, densify: bool = False) -> BatchProfile:
    """Census one batch's adjacency tiles.

    The default path computes tile coordinates straight from the CSR edge
    list — ``O(E)`` and allocation-free — so paper-scale graphs profile in
    seconds.  ``densify=True`` goes through the actual packed adjacency and
    the ballot-based census instead; tests assert both agree.
    """
    n = batch.num_nodes
    if densify:
        packed = batch.packed_adjacency(self_loops=True)
        nnz_tiles = int(tile_nonzero_mask(packed.plane(0)).sum())
    else:
        tile_keys = []
        kt = pad_to(n, TC_K) // TC_K
        for sub, off in zip(batch.members, batch.node_offsets):
            g = sub.graph
            rows = np.repeat(np.arange(g.num_nodes), np.diff(g.indptr)) + off
            cols = g.indices + off
            # Self-loop diagonal of this member.
            diag = np.arange(off, off + g.num_nodes)
            r = np.concatenate([rows, diag])
            c = np.concatenate([cols, diag])
            tile_keys.append((r // TC_M) * kt + (c // TC_K))
        nnz_tiles = int(np.unique(np.concatenate(tile_keys)).size)
    return BatchProfile(
        num_nodes=n,
        num_edges=batch.num_edges,
        nnz_adj=2 * batch.num_edges + n,  # symmetric edges + self loops
        mt=pad_to(n, TC_M) // TC_M,
        kt=pad_to(n, TC_K) // TC_K,
        nnz_tiles=nnz_tiles,
    )


def profile_batches(
    subgraphs: Sequence[Subgraph], batch_size: int
) -> list[BatchProfile]:
    """Profile every batch of a partitioned dataset."""
    if batch_size < 1:
        raise ShapeError(f"batch_size must be >= 1, got {batch_size}")
    return [profile_batch(b) for b in batch_subgraphs(subgraphs, batch_size)]
