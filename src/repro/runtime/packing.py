"""Bandwidth-optimized subgraph packing (paper §4.6).

Three host-to-device strategies for one subgraph batch:

* ``dense-fp32`` — the naive baseline: dense fp32 adjacency plus fp32
  features, two separate transfers;
* ``packed-separate`` — bit-compressed adjacency and low-bit features,
  still two transfers;
* ``packed-compound`` — QGTC's strategy: both compressed operands fused
  into one memory object (the paper registers them as buffers of a single
  ``torch.nn.Module``) and shipped in a single transaction.

:func:`batch_payload` computes exact byte counts from the padded packed
shapes so the modeled saving matches what the kernel actually consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..core.bitpack import TC_K, TC_M, pad_to
from ..errors import ConfigError
from ..tc.hardware import DeviceSpec
from .pcie import TransferEstimate, transfer_time

__all__ = ["TransferMode", "BatchPayload", "batch_payload", "batch_transfer_time"]

TransferMode = Literal["dense-fp32", "packed-separate", "packed-compound"]


@dataclass(frozen=True)
class BatchPayload:
    """Byte breakdown of one batch's host-device payload."""

    adjacency_bytes: int
    feature_bytes: int
    transactions: int
    mode: str

    @property
    def total_bytes(self) -> int:
        return self.adjacency_bytes + self.feature_bytes


def batch_payload(
    num_nodes: int,
    feature_dim: int,
    feature_bits: int,
    *,
    mode: TransferMode = "packed-compound",
) -> BatchPayload:
    """Bytes to ship one batch under the given strategy.

    Packed sizes use the PAD8/PAD128 storage shapes of §4.2 (what is
    actually allocated), not idealized ``n*n/8`` counts.
    """
    if num_nodes < 1 or feature_dim < 1:
        raise ConfigError("num_nodes and feature_dim must be positive")
    if not 1 <= feature_bits <= 32:
        raise ConfigError(f"feature_bits must be in [1, 32], got {feature_bits}")
    if mode == "dense-fp32":
        adj = num_nodes * num_nodes * 4
        feats = num_nodes * feature_dim * 4
        return BatchPayload(
            adjacency_bytes=adj, feature_bytes=feats, transactions=2, mode=mode
        )
    # Packed: adjacency is 1-bit column-compressed, features are
    # ``feature_bits``-plane row-compressed.
    adj = pad_to(num_nodes, TC_M) * (pad_to(num_nodes, TC_K) // 8)
    feats = feature_bits * pad_to(feature_dim, TC_M) * (pad_to(num_nodes, TC_K) // 8)
    if mode == "packed-separate":
        return BatchPayload(
            adjacency_bytes=adj, feature_bytes=feats, transactions=2, mode=mode
        )
    if mode == "packed-compound":
        return BatchPayload(
            adjacency_bytes=adj, feature_bytes=feats, transactions=1, mode=mode
        )
    raise ConfigError(f"unknown transfer mode {mode!r}")


def batch_transfer_time(
    num_nodes: int,
    feature_dim: int,
    feature_bits: int,
    device: DeviceSpec,
    *,
    mode: TransferMode = "packed-compound",
) -> TransferEstimate:
    """Modeled PCIe time for one batch under the given strategy."""
    payload = batch_payload(num_nodes, feature_dim, feature_bits, mode=mode)
    return transfer_time(
        payload.total_bytes, device, transactions=payload.transactions
    )
