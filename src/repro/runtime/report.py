"""Structured timing reports for end-to-end epoch modeling."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EpochReport"]


@dataclass
class EpochReport:
    """Modeled one-epoch inference time, decomposed by cost source.

    All fields are modeled seconds on the emulated device.  ``transfer_s``
    is kept out of :meth:`total_s` by default because the paper's Figure 7
    epoch times "exclude the time of data loading" (artifact appendix); the
    packing ablation reports it explicitly.
    """

    system: str
    dataset: str = ""
    num_batches: int = 0
    launch_s: float = 0.0
    compute_s: float = 0.0
    memory_s: float = 0.0
    reload_s: float = 0.0
    elementwise_s: float = 0.0
    framework_s: float = 0.0
    transfer_s: float = 0.0
    #: Total bmma instructions (QGTC paths) for sanity checks.
    mma_ops: int = 0
    #: Total kernel launches across the epoch.
    kernels: int = 0
    #: A-operand tiles inspected across all launches (measured census).
    tiles_total: int = 0
    #: Tiles the zero-tile ballot skipped (measured, not assumed — fed from
    #: the same per-plane masks the sparse host engine executes).
    tiles_skipped: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def skip_fraction(self) -> float:
        """Measured fraction of inspected tiles that were jumped (§4.3)."""
        if self.tiles_total == 0:
            return 0.0
        return self.tiles_skipped / self.tiles_total

    def total_s(self, *, include_transfer: bool = False) -> float:
        total = (
            self.launch_s
            + self.compute_s
            + self.memory_s
            + self.reload_s
            + self.elementwise_s
            + self.framework_s
        )
        if include_transfer:
            total += self.transfer_s
        return total

    def total_ms(self, *, include_transfer: bool = False) -> float:
        return self.total_s(include_transfer=include_transfer) * 1e3

    def merge(self, other: "EpochReport") -> "EpochReport":
        """Accumulate another report's costs into this one (in place)."""
        self.num_batches += other.num_batches
        self.launch_s += other.launch_s
        self.compute_s += other.compute_s
        self.memory_s += other.memory_s
        self.reload_s += other.reload_s
        self.elementwise_s += other.elementwise_s
        self.framework_s += other.framework_s
        self.transfer_s += other.transfer_s
        self.mma_ops += other.mma_ops
        self.kernels += other.kernels
        self.tiles_total += other.tiles_total
        self.tiles_skipped += other.tiles_skipped
        return self
