"""Runtime: PCIe transfer modeling, bandwidth-optimized subgraph packing,
batch profiling, and the end-to-end QGTC epoch executor (paper §4.1/4.5/4.6)."""

from .executor import (
    QGTC_FRAMEWORK_OVERHEAD_S,
    QGTCRunConfig,
    modeled_batch_report,
    modeled_plan_report,
    qgtc_epoch_report,
    step_time_attribution,
)
from .packing import BatchPayload, TransferMode, batch_payload, batch_transfer_time
from .pcie import TransferEstimate, transfer_time
from .profilebatch import BatchProfile, profile_batch, profile_batches
from .report import EpochReport

__all__ = [
    "QGTC_FRAMEWORK_OVERHEAD_S",
    "BatchPayload",
    "BatchProfile",
    "EpochReport",
    "QGTCRunConfig",
    "TransferEstimate",
    "TransferMode",
    "batch_payload",
    "batch_transfer_time",
    "modeled_batch_report",
    "modeled_plan_report",
    "profile_batch",
    "profile_batches",
    "qgtc_epoch_report",
    "step_time_attribution",
    "transfer_time",
]
