"""End-to-end QGTC epoch modeling (paper Figure 7 pipeline).

Given the batch profiles of a partitioned dataset and a model, build the
per-layer kernel counter stream exactly as the fused QGTC pipeline would
launch it, and convert it to modeled time:

* GCN layer: aggregation GEMM ``Â(1-bit) x X(s-bit)``, then update GEMM
  ``X_new(s) x W(t)``;
* GIN layer: update first, then aggregation (paper §6.1);
* hidden layers carry a fused quantize/decompose + activation epilogue
  (no extra kernels when fusion is on; three elementwise kernels each when
  off — the §4.5 ablation);
* each batch pays one host-device transfer, modeled per §4.6 strategy and
  reported separately (the paper's epoch time excludes data loading).

Calibrated per-batch framework overhead (Python dataloader + dispatch) is
documented next to its constant.

The unit of modeling is one batch.  The only data-dependent inputs are
the batch's node count and its adjacency tile census, and the census
already lives on the plan layer: :func:`modeled_plan_report` models a
batch straight from the :class:`~repro.tc.kernel.TileSkipPlan` its packed
adjacency carries — the same ballot the executed kernels skip by — so a
serving session describes modeled and measured work from one artifact
with no re-censusing.  :func:`qgtc_epoch_report` merges per-batch reports
over an epoch from pre-measured
:class:`~repro.runtime.profilebatch.BatchProfile` statistics (the cheap
``O(E)`` census path for paper-scale figure sweeps), and
:func:`modeled_batch_report` remains as a deprecated shim over the same
closed forms for callers still holding a ``BatchProfile``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigError
from ..gnn.models import GNNModel
from ..plan.ir import GemmSpec, forward_gemm_specs
from ..tc.costmodel import TCCostModel
from ..tc.hardware import RTX3090, DeviceSpec
from ..tc.kernel import KernelConfig, TileSkipPlan, derive_tile_counters
from .packing import TransferMode, batch_transfer_time
from .profilebatch import BatchProfile
from .report import EpochReport

__all__ = [
    "QGTC_FRAMEWORK_OVERHEAD_S",
    "QGTCRunConfig",
    "modeled_batch_report",
    "modeled_plan_report",
    "qgtc_epoch_report",
    "step_time_attribution",
]


def step_time_attribution(timings, *, by: str = "backend") -> dict[str, float]:
    """Aggregate measured per-step wall-clock by backend or GEMM role.

    ``timings`` is a sequence of :class:`~repro.gnn.quantized.StepTiming`
    samples — what :func:`~repro.gnn.quantized.execute_forward_plan`
    measures for every executed plan step.  The measured counterpart of
    the modeled reports above: the serving engine accumulates it into
    ``stats.backend_seconds`` per session, and a
    :class:`~repro.serving.pool.ServingPool` reports it per worker, so a
    pool's wall-clock attributes to (worker, backend) cells.

    ``by`` selects the grouping key: ``"backend"`` (the executed backend
    name) or ``"role"`` (the spec's ``aggregate``/``update`` role).

    Example::

        forward = execute_forward_plan(plan, model, batch)
        step_time_attribution(forward.timings)
        # {'sparse': 0.0012, 'blas': 0.0004}
    """
    if by not in ("backend", "role"):
        raise ConfigError(f"by must be 'backend' or 'role', got {by!r}")
    out: dict[str, float] = {}
    for timing in timings:
        key = timing.backend if by == "backend" else timing.spec.role
        out[key] = out.get(key, 0.0) + timing.seconds
    return out

#: Per-batch host-side overhead of the QGTC PyTorch front-end (Python
#: dataloader iteration + extension dispatch).  Calibrated so the
#: launch-dominated Figure 7a datasets (Proteins: 1500 single-subgraph
#: batches) land near the paper's absolute epoch times.
QGTC_FRAMEWORK_OVERHEAD_S = 18e-6


@dataclass(frozen=True)
class QGTCRunConfig:
    """One QGTC execution configuration (a Figure 7 bar)."""

    feature_bits: int = 4
    weight_bits: int | None = None
    kernel: KernelConfig = field(default_factory=KernelConfig)
    #: Inter-layer kernel fusion (§4.5).  Off → three extra elementwise
    #: kernels per hidden layer (bias, activation, quantize/decompose).
    fused: bool = True
    transfer_mode: TransferMode = "packed-compound"
    framework_overhead_s: float = QGTC_FRAMEWORK_OVERHEAD_S

    def __post_init__(self) -> None:
        if not 1 <= self.feature_bits <= 32:
            raise ConfigError(
                f"feature_bits must be in [1, 32], got {self.feature_bits}"
            )
        if self.weight_bits is not None and not 1 <= self.weight_bits <= 32:
            raise ConfigError(
                f"weight_bits must be in [1, 32], got {self.weight_bits}"
            )

    @property
    def effective_weight_bits(self) -> int:
        return self.weight_bits if self.weight_bits is not None else self.feature_bits

    @property
    def label(self) -> str:
        return f"QGTC ({self.feature_bits}-bit)"


def _spec_counters(
    spec: GemmSpec,
    *,
    mt: int | None = None,
    kt: int | None = None,
    processed_per_plane: list[int],
    jumping: bool,
    config: KernelConfig,
):
    """Closed-form counters for one planned GEMM.

    Shapes and bitwidths come from the :class:`~repro.plan.ir.GemmSpec` —
    the same nodes the executed plan dispatches — so modeled and measured
    accounting describe identical work.  ``mt``/``kt`` may be overridden
    with a measured tile grid (the batch profile's census grid).
    """
    spec_mt, spec_kt, spec_nt = spec.tile_grid()
    return derive_tile_counters(
        mt=spec_mt if mt is None else mt,
        kt=spec_kt if kt is None else kt,
        nt=spec_nt,
        bits_a=spec.bits_a,
        bits_b=spec.bits_b,
        processed_per_plane=processed_per_plane,
        jumping=jumping,
        config=config,
    )


def modeled_plan_report(
    model: GNNModel,
    config: QGTCRunConfig,
    *,
    num_nodes: int,
    tile_plan: TileSkipPlan,
    device: DeviceSpec = RTX3090,
    dataset: str = "",
    cost: TCCostModel | None = None,
) -> EpochReport:
    """Model one batch (all layers) as a single-batch :class:`EpochReport`.

    ``tile_plan`` is the batch adjacency's measured zero-tile ballot — the
    artifact an executed plan already carries on its census node
    (:class:`~repro.gnn.quantized.PackedAdjacency` ``.plan``) — so the
    serving engine attributes modeled device time to each executed batch
    without re-censusing anything: modeled and measured skip counts come
    from literally the same masks.  Only 1-bit plans describe an
    adjacency; anything else is a caller error, not a modeling choice.
    Pass a pre-built ``cost`` model when calling in a loop.
    """
    if tile_plan.bits != 1:
        raise ConfigError(
            f"an adjacency tile plan has exactly one bit plane, got "
            f"{tile_plan.bits}; this report models the 1-bit aggregation "
            "operand"
        )
    mt, kt = tile_plan.tile_grid
    return _modeled_report(
        model,
        config,
        num_nodes=num_nodes,
        mt=mt,
        kt=kt,
        nnz_tiles=tile_plan.summary().nonzero_tiles,
        device=device,
        dataset=dataset,
        cost=cost,
    )


def modeled_batch_report(
    profile: BatchProfile,
    model: GNNModel,
    config: QGTCRunConfig,
    device: DeviceSpec = RTX3090,
    *,
    dataset: str = "",
    cost: TCCostModel | None = None,
) -> EpochReport:
    """Deprecated shim: model one batch from a :class:`BatchProfile`.

    The profile argument duplicates what the plan layer already knows —
    an executed batch's adjacency artifact carries its measured census —
    so new code calls :func:`modeled_plan_report` with the
    :class:`~repro.tc.kernel.TileSkipPlan` instead (epoch sweeps over
    pre-profiled datasets go through :func:`qgtc_epoch_report`, which
    consumes profiles directly).  This wrapper maps the profile onto the
    same closed forms and will be removed once external callers migrate.
    """
    warnings.warn(
        "modeled_batch_report(profile, ...) is deprecated; use "
        "modeled_plan_report(model, config, num_nodes=..., tile_plan=...) "
        "with the batch adjacency's TileSkipPlan",
        DeprecationWarning,
        stacklevel=2,
    )
    return _modeled_report(
        model,
        config,
        num_nodes=profile.num_nodes,
        mt=profile.mt,
        kt=profile.kt,
        nnz_tiles=profile.nnz_tiles,
        device=device,
        dataset=dataset,
        cost=cost,
    )


def _modeled_report(
    model: GNNModel,
    config: QGTCRunConfig,
    *,
    num_nodes: int,
    mt: int,
    kt: int,
    nnz_tiles: int,
    device: DeviceSpec = RTX3090,
    dataset: str = "",
    cost: TCCostModel | None = None,
) -> EpochReport:
    """Shared closed forms: one batch modeled from its census grid."""
    cost = cost or TCCostModel(device)
    fb = config.feature_bits
    wb = config.effective_weight_bits
    report = EpochReport(system=config.label, dataset=dataset)

    n = num_nodes
    report.num_batches += 1
    report.framework_s += config.framework_overhead_s
    report.transfer_s += batch_transfer_time(
        n, model.feature_dim, fb, device, mode=config.transfer_mode
    ).seconds

    jumping = config.kernel.zero_tile_jumping
    agg_processed = [nnz_tiles if jumping else mt * kt]

    # The per-layer GEMM shapes/bitwidths come from the same plan nodes the
    # executed forward dispatches (plan/ir.forward_gemm_specs), so modeled
    # and measured counters share one source of truth by construction.
    spec_pairs = forward_gemm_specs(
        model, num_nodes=n, feature_bits=fb, weight_bits=wb
    )
    last = len(spec_pairs) - 1
    for i, (agg_spec, upd_spec) in enumerate(spec_pairs):
        agg_counters = _spec_counters(
            agg_spec,
            # The adjacency grid is the *measured* census grid of the
            # batch, not a padding recomputation.
            mt=mt,
            kt=kt,
            processed_per_plane=agg_processed,
            jumping=jumping,
            config=config.kernel,
        )
        upd_mt, upd_kt, _ = upd_spec.tile_grid()
        upd_counters = _spec_counters(
            upd_spec,
            processed_per_plane=[upd_mt * upd_kt] * upd_spec.bits_a,
            jumping=False,
            config=config.kernel,
        )
        for counters in (agg_counters, upd_counters):
            t = cost.kernel_time(counters)
            report.launch_s += t.launch_s
            report.compute_s += t.compute_s if t.compute_s >= t.stream_s else 0.0
            report.memory_s += t.stream_s if t.stream_s > t.compute_s else 0.0
            report.reload_s += t.reload_s
            report.mma_ops += counters.mma_ops
            report.kernels += counters.launches
            # The aggregation counters carry the batch's *measured* tile
            # census (profile.nnz_tiles comes from the real packed operand),
            # so the report's skip fraction is an observation, not a model.
            report.tiles_total += counters.tiles_total
            report.tiles_skipped += counters.tiles_skipped

        if not config.fused and i != last:
            # Unfused epilogue: bias, activation, quantize/decompose —
            # three streaming kernels over the layer output.
            elem_bytes = 2 * n * upd_spec.n * 4
            for _ in range(3):
                report.elementwise_s += (
                    device.kernel_launch_s + elem_bytes / device.effective_dram_bw
                )
                report.kernels += 1
    return report


def qgtc_epoch_report(
    profiles: Sequence[BatchProfile],
    model: GNNModel,
    config: QGTCRunConfig,
    device: DeviceSpec = RTX3090,
    *,
    dataset: str = "",
) -> EpochReport:
    """Model one inference epoch (all batches, all layers)."""
    cost = TCCostModel(device)
    report = EpochReport(system=config.label, dataset=dataset)
    for profile in profiles:
        report.merge(
            _modeled_report(
                model,
                config,
                num_nodes=profile.num_nodes,
                mt=profile.mt,
                kt=profile.kt,
                nnz_tiles=profile.nnz_tiles,
                device=device,
                dataset=dataset,
                cost=cost,
            )
        )
    return report
