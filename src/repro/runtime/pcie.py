"""Host-device transfer model (paper §4.6 context).

Subgraph data must cross PCIe every batch; the paper's point is that moving
*compressed low-bit* operands instead of fp32 densities shrinks that
traffic by more than an order of magnitude.  The model charges a fixed
per-transaction latency plus bytes over effective bandwidth — enough to
reproduce both the bandwidth saving and the transaction-count saving of
compound packing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError
from ..tc.hardware import DeviceSpec

__all__ = ["TransferEstimate", "transfer_time"]


@dataclass(frozen=True)
class TransferEstimate:
    """One or more host-device transactions, modeled."""

    bytes_moved: int
    transactions: int
    seconds: float

    @property
    def effective_gbs(self) -> float:
        """Achieved GB/s including latency overheads."""
        if self.seconds <= 0:
            return 0.0
        return self.bytes_moved / self.seconds / 1e9


def transfer_time(
    num_bytes: int, device: DeviceSpec, *, transactions: int = 1
) -> TransferEstimate:
    """Model moving ``num_bytes`` in ``transactions`` PCIe transfers."""
    if num_bytes < 0:
        raise DeviceError(f"negative transfer size: {num_bytes}")
    if transactions < 1:
        raise DeviceError(f"transactions must be >= 1, got {transactions}")
    seconds = transactions * device.pcie_latency_s + num_bytes / device.effective_pcie_bw
    return TransferEstimate(
        bytes_moved=num_bytes, transactions=transactions, seconds=seconds
    )
