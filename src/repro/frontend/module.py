"""A minimal ``torch.nn.Module`` work-alike (paper §5 / §4.6).

QGTC integrates with PyTorch by (a) exposing its kernels behind module
classes and (b) using ``torch.nn.Module`` + ``register_buffer`` to fuse a
batch's compressed adjacency and embedding into one *compound memory
object* shipped over PCIe in a single transaction (§4.6).  This module
reproduces exactly the ``Module`` machinery those two uses need:
registered buffers/parameters, recursive traversal, and a ``state_dict``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ConfigError

__all__ = ["Module", "Parameter"]


class Parameter:
    """A learnable array (mirrors ``torch.nn.Parameter``)."""

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.data.shape}, dtype={self.data.dtype})"


class Module:
    """Base class with buffer / parameter / submodule registration."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_modules", {})

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_buffer(self, name: str, value: np.ndarray | None) -> None:
        """Attach a non-learnable array (the §4.6 packing mechanism)."""
        if not name.isidentifier():
            raise ConfigError(f"buffer name {name!r} is not an identifier")
        self._buffers[name] = None if value is None else np.asarray(value)

    def register_parameter(self, name: str, value: Parameter | None) -> None:
        if not name.isidentifier():
            raise ConfigError(f"parameter name {name!r} is not an identifier")
        self._parameters[name] = value

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        for registry in ("_parameters", "_buffers", "_modules"):
            table = object.__getattribute__(self, registry)
            if name in table:
                return table[name]
        raise AttributeError(f"{type(self).__name__!r} has no attribute {name!r}")

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_buffers(self, *, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            if buf is not None:
                yield f"{prefix}{name}", buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def named_parameters(self, *, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, par in self._parameters.items():
            if par is not None:
                yield f"{prefix}{name}", par
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def buffers(self) -> Iterator[np.ndarray]:
        for _, buf in self.named_buffers():
            yield buf

    def parameters(self) -> Iterator[Parameter]:
        for _, par in self.named_parameters():
            yield par

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name -> array mapping of parameters and buffers."""
        out = {name: par.data for name, par in self.named_parameters()}
        out.update({name: buf for name, buf in self.named_buffers()})
        return out

    def buffer_nbytes(self) -> int:
        """Total bytes of registered buffers — the compound payload size."""
        return sum(buf.nbytes for buf in self.buffers())

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__} must define forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
