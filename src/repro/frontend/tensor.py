"""A minimal PyTorch-like ``Tensor`` carrying the bit-Tensor API (paper §5).

QGTC extends ``torch.Tensor`` with ``to_bit(nbits)`` / ``to_val(nbits)``.
We reproduce that surface on a thin NumPy wrapper so the examples read like
the paper's usage:

>>> x = Tensor(np.random.randn(64, 128))
>>> xb = x.to_bit(3)           # 3-bit bit-Tensor (3D-stacked compression)
>>> xq = xb.to_val()           # decode back to integer codes
"""

from __future__ import annotations

import numpy as np

from ..core.bittensor import BitTensor
from ..core.bittensor import to_bit as _to_bit
from ..errors import ShapeError

__all__ = ["Tensor"]


class Tensor:
    """NumPy-backed tensor with QGTC's bit-Tensor conversions."""

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data)

    # -- PyTorch-flavoured introspection --------------------------------- #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def numel(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, dtype={self.dtype})"

    # -- QGTC extension API (paper §5) ------------------------------------ #
    def to_bit(
        self, nbits: int, *, layout: str = "col", pad_vectors: int = 8
    ) -> BitTensor:
        """Encode as a bit-Tensor (the paper's ``Tensor.to_bit(nbits)``).

        Float tensors are quantized with per-tensor calibration first;
        integer tensors are taken as codes.
        """
        if self.data.ndim != 2:
            raise ShapeError(
                f"to_bit expects a 2-D tensor, got shape {self.data.shape}"
            )
        return _to_bit(self.data, nbits, layout=layout, pad_vectors=pad_vectors)

    @staticmethod
    def from_bit(bit_tensor: BitTensor) -> "Tensor":
        """Decode a bit-Tensor into an int64 Tensor (``to_val`` semantics)."""
        return Tensor(bit_tensor.to_val())
