"""Ready-made QGTC modules: quantized linear / graph-conv layers and the
compound subgraph buffer (paper §5 API surface + §4.6 packing).

These are the classes an end user of the published artifact would touch:

* :class:`BitLinear` — a linear layer whose matmul runs as a packed
  bit-GEMM (``bitMM2Int`` under the hood);
* :class:`BitGraphConv` — one quantized GCN layer (aggregate then update)
  on a dense-subgraph adjacency;
* :class:`CompoundSubgraphBuffer` — a module holding one batch's
  bit-compressed adjacency and features as registered buffers, giving the
  single-transaction PCIe payload of §4.6.
"""

from __future__ import annotations

import numpy as np

from ..core.api import bit_mm_to_int
from ..core.bittensor import to_bit
from ..core.quantization import quantize
from ..errors import ShapeError
from ..graph.batching import SubgraphBatch
from .module import Module, Parameter

__all__ = ["BitLinear", "BitGraphConv", "CompoundSubgraphBuffer"]


class BitLinear(Module):
    """``y = x @ W`` with both operands quantized and bit-composed.

    Weights are quantized once at construction (the cache the paper keeps
    across subgraphs); inputs are quantized per call.  The integer GEMM is
    exact; the float result carries only quantization error.
    """

    def __init__(
        self, weight: np.ndarray, *, weight_bits: int = 4, input_bits: int = 4
    ):
        super().__init__()
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ShapeError(f"weight must be 2-D, got {weight.shape}")
        self.weight = Parameter(weight)
        self.weight_bits = weight_bits
        self.input_bits = input_bits
        codes, params = quantize(weight, bits=weight_bits)
        self._w_bit = to_bit(codes, weight_bits, layout="row")
        self._w_params = params

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1] != self.weight.data.shape[0]:
            raise ShapeError(
                f"input dim {x.shape[1]} != weight rows {self.weight.data.shape[0]}"
            )
        codes, px = quantize(x, bits=self.input_bits)
        xb = to_bit(codes, self.input_bits, layout="col")
        prod = bit_mm_to_int(xb, self._w_bit).astype(np.float64)
        # Affine correction (see repro.gnn.quantized for the algebra).
        cw = self._w_params.alpha_min + self._w_params.scale / 2
        cx = px.alpha_min + px.scale / 2
        k = x.shape[1]
        return (
            px.scale * self._w_params.scale * prod
            + px.scale * cw * codes.sum(axis=1, dtype=np.float64)[:, None]
            + cx * self._w_params.scale * self._w_bit.to_val().sum(axis=0)[None, :]
            + k * cx * cw
        )


class BitGraphConv(Module):
    """One quantized GCN layer: ``relu(Â (X) W)`` on a dense subgraph."""

    def __init__(
        self, weight: np.ndarray, *, weight_bits: int = 4, input_bits: int = 4
    ):
        super().__init__()
        self.linear = BitLinear(
            weight, weight_bits=weight_bits, input_bits=input_bits
        )
        self.input_bits = input_bits

    def forward(self, adjacency: np.ndarray, x: np.ndarray) -> np.ndarray:
        adjacency = np.asarray(adjacency)
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ShapeError(f"adjacency must be square, got {adjacency.shape}")
        if adjacency.shape[0] != x.shape[0]:
            raise ShapeError("adjacency and feature rows differ")
        adj_bit = to_bit(adjacency.astype(np.int64), 1, layout="col")
        codes, px = quantize(np.asarray(x, dtype=np.float64), bits=self.input_bits)
        xb = to_bit(codes, self.input_bits, layout="row")
        agg_codes = bit_mm_to_int(adj_bit, xb).astype(np.float64)
        degrees = adjacency.sum(axis=1).astype(np.float64)[:, None]
        agg = px.scale * agg_codes + (px.alpha_min + px.scale / 2) * degrees
        return np.maximum(self.linear(agg), 0.0)


class CompoundSubgraphBuffer(Module):
    """One batch's compressed operands as a single registered payload.

    The paper packs "the low-bit adjacent matrix and low-bit embedding
    matrix into a compound memory object (by using torch.nn.Module and
    register_buffer)" so the host-device copy is one transaction.  The
    ``adjacency`` buffer holds the 1-bit column-compressed words, the
    ``features`` buffer the s-bit row-compressed words;
    :meth:`Module.buffer_nbytes` is the payload the PCIe model charges.
    """

    def __init__(self, batch: SubgraphBatch, *, feature_bits: int = 4):
        super().__init__()
        self.feature_bits = feature_bits
        packed_adj = batch.packed_adjacency(self_loops=True)
        codes, params = quantize(
            batch.features().astype(np.float64), bits=feature_bits
        )
        feat_bit = to_bit(codes, feature_bits, layout="row")
        self.register_buffer("adjacency", packed_adj.words)
        self.register_buffer("features", feat_bit.storage_words)
        self.quant_params = params
        self.num_nodes = batch.num_nodes

    def forward(self) -> dict[str, np.ndarray]:
        """Return the payload views (what the device kernel would receive)."""
        return {"adjacency": self.adjacency, "features": self.features}

    @property
    def payload_bytes(self) -> int:
        """Bytes crossing PCIe in the single compound transaction."""
        return self.buffer_nbytes()
