"""PyTorch-integration surface (paper §5): a minimal Tensor/Module layer,
QGTC layer modules, and the §4.6 compound subgraph buffer."""

from .layers import BitGraphConv, BitLinear, CompoundSubgraphBuffer
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "BitGraphConv",
    "BitLinear",
    "CompoundSubgraphBuffer",
    "Module",
    "Parameter",
    "Tensor",
]
