"""Lower plan steps into specialized LoopIR programs.

Three schedule transforms, applied while lowering:

* **fuse pack+census** (:func:`lower_pack_census`): the adjacency's
  bit-pack and its 8x128 zero-tile ballot — two separate walks over the
  operand today — become one emitted pass that derives both the packed
  words and the tile mask from a single padded intermediate (and takes
  the degree row-sums from the same dense array while it is hot).
* **unroll bit-plane loops** (:func:`unroll_bit_planes`): plane loops
  with the plan's concrete bitwidth trip counts are unrolled to literal
  plane indices, so the emitted dense kernel is a straight line of
  per-pair statements.
* **skip-loop specialization** (inside :func:`lower_gemm`): the
  ``TileSkipPlan`` census is baked in at lowering time — tile rows with
  identical non-zero-column patterns are grouped once (the ``np.unique``
  the ``sparse`` engine repeats on every call), each group's row and
  word index lists are precomputed into the program ``env``, and groups
  whose indices form contiguous runs are emitted as pure slices.  The
  kernel iterates exactly the precomputed non-zero work; there is no
  runtime tile test left in the emitted source.

Both GEMM paths additionally *widen* the packed uint32 words to uint64
views (``widen-words:u64``) — the AND + popcount stream processes half
the elements per bit of work, a schedule the hand-written engines do not
apply — and vectorize over all B planes through one N-contiguous
transpose per call instead of per-group gathers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..core.bitpack import TC_K, TC_M, pad_to
from ..core.bitops import WORD_BITS
from ..errors import ShapeError
from ..plan.ir import GemmStep, LayerPlan
from .loopir import Block, Line, Loop, Program, Stmt, unroll

__all__ = [
    "GROUP_UNROLL_LIMIT",
    "PAIR_UNROLL_LIMIT",
    "LayerLowering",
    "census_pattern_count",
    "lower_gemm",
    "lower_layer_plan",
    "lower_pack_census",
    "unroll_bit_planes",
]

#: Above this many distinct tile-row census patterns the skip-loop
#: specialization falls back to the dense schedule (the emitted source
#: would otherwise grow without bound on noise-structured censuses).
GROUP_UNROLL_LIMIT = 48

#: Above this many plane pairs the dense path keeps runtime plane loops
#: instead of unrolling (32x32 bits would emit 1024 statement groups).
PAIR_UNROLL_LIMIT = 16

#: Byte budget of one row block's AND/popcount temporaries; row-block
#: trip counts are baked into the emitted source from it.
TEMP_BUDGET_BYTES = 32 * 1024 * 1024

#: uint64 AND word + uint8 popcount byte per widened element.
_TEMP_BYTES_PER_ELEM = 9


def _row_block(rows: int, bytes_per_row: int) -> int:
    """Largest multiple-of-8 row block whose temporaries fit the budget."""
    if rows <= 0:
        return 8
    block = max(TEMP_BUDGET_BYTES // max(bytes_per_row, 1), 8)
    block -= block % 8
    return int(min(max(block, 8), pad_to(rows, 8)))


def _contiguous_run(indices: np.ndarray) -> tuple[int, int] | None:
    """``(start, stop)`` when ``indices`` is a dense ascending run."""
    if indices.size == 0:
        return None
    lo, hi = int(indices[0]), int(indices[-1])
    if hi - lo + 1 == indices.size and np.array_equal(
        indices, np.arange(lo, hi + 1)
    ):
        return (lo, hi + 1)
    return None


def unroll_bit_planes(body: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
    """Unroll every ``axis="plane"`` loop in the tree to literal indices."""
    out: list[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Loop):
            inner = unroll_bit_planes(stmt.body)
            stmt = Loop(stmt.var, stmt.count, inner, stmt.axis)
            if stmt.axis == "plane" and isinstance(stmt.count, int):
                out.append(unroll(stmt))
                continue
            out.append(stmt)
        elif isinstance(stmt, Block):
            out.append(Block(stmt.label, unroll_bit_planes(stmt.body)))
        else:
            out.append(stmt)
    return tuple(out)


# --------------------------------------------------------------------- #
# GEMM lowering
# --------------------------------------------------------------------- #
def lower_gemm(
    *,
    m: int,
    n: int,
    bits_a: int,
    bits_b: int,
    a_padded_vectors: int,
    a_k_words: int,
    tile_mask: np.ndarray | None = None,
    name: str = "gemm_kernel",
) -> Program:
    """Lower one plane-product GEMM into a specialized program.

    The emitted function has the backend ``run_planes`` calling
    convention restricted to raw words: ``fn(a_words, b_words)`` with
    ``a_words`` of shape ``(bits_a, a_padded_vectors, a_k_words)`` and
    ``b_words`` of shape ``(bits_b, padded_n, a_k_words)`` (both
    C-contiguous uint32), returning the int64 plane products
    ``(bits_a, bits_b, m, n)`` on the logical shapes.

    With ``tile_mask`` (1-bit left operands only) the census is baked in
    as a skip-loop specialization; otherwise the dense unrolled schedule
    is used.  Every shape, bitwidth and index constant is a literal in
    the emitted source.
    """
    if a_k_words % 4:
        raise ShapeError(f"k-word count {a_k_words} is not a whole tile column")
    if tile_mask is not None:
        if bits_a != 1:
            raise ShapeError("skip-loop specialization requires a 1-bit left operand")
        grid = (a_padded_vectors // 8, a_k_words // 4)
        if tile_mask.shape != grid:
            raise ShapeError(
                f"tile mask shape {tile_mask.shape} does not match the "
                f"{grid} tile grid of the operand"
            )
    if m == 0 or n == 0:
        return Program(
            name=name,
            args=("a_words", "b_words"),
            body=(
                Line(f"return np.zeros(({bits_a}, {bits_b}, {m}, {n}), dtype=np.int64)"),
            ),
            schedule=("degenerate-empty",),
        )
    if tile_mask is not None:
        program = _lower_gemm_skip(
            m=m,
            n=n,
            bits_b=bits_b,
            a_padded_vectors=a_padded_vectors,
            a_k_words=a_k_words,
            tile_mask=tile_mask,
            name=name,
        )
        if program is not None:
            return program
    return _lower_gemm_dense(
        m=m,
        n=n,
        bits_a=bits_a,
        bits_b=bits_b,
        a_k_words=a_k_words,
        name=name,
        fallback=tile_mask is not None,
    )


def _strided_loop(var: str, start: int, stop: int, step: int, body) -> Loop:
    """A runtime loop ``for var in range(start, stop, step)`` (the
    ``count`` string carries the full range argument list)."""
    return Loop(var=var, count=f"{start}, {stop}, {step}", body=tuple(body), axis="rows")


def _lower_gemm_dense(
    *,
    m: int,
    n: int,
    bits_a: int,
    bits_b: int,
    a_k_words: int,
    name: str,
    fallback: bool = False,
) -> Program:
    """The dense schedule: unrolled plane pairs of row-blocked AND+popcount."""
    w2 = a_k_words // 2
    rb = _row_block(m, bytes_per_row=n * w2 * _TEMP_BYTES_PER_ELEM)
    product = Line(
        f"out[ai, bj, r0:r0 + {rb}] = popcount64("
        f"ap[r0:r0 + {rb}, None, :] & bp[None, :, :]"
        ").sum(axis=-1, dtype=np.int64)"
    )
    row_loop = _strided_loop("r0", 0, m, rb, (product,))
    body: tuple[Stmt, ...] = (
        Line("a64 = a_words.view(np.uint64)"),
        Line("b64 = b_words.view(np.uint64)"),
        Line(f"out = np.empty(({bits_a}, {bits_b}, {m}, {n}), dtype=np.int64)"),
        Loop(
            var="ai",
            count=bits_a,
            axis="plane",
            body=(
                Loop(
                    var="bj",
                    count=bits_b,
                    axis="plane",
                    body=(
                        Line(f"ap = a64[ai][:{m}]"),
                        Line(f"bp = b64[bj][:{n}]"),
                        row_loop,
                    ),
                ),
            ),
        ),
        Line("return out"),
    )
    schedule = ["widen-words:u64", f"row-block:{rb}"]
    if bits_a * bits_b <= PAIR_UNROLL_LIMIT:
        body = unroll_bit_planes(body)
        schedule.append(f"unroll-bit-planes:{bits_a}x{bits_b}")
    if fallback:
        schedule.append("skip-specialize:fallback-dense")
    return Program(
        name=name,
        args=("a_words", "b_words"),
        body=body,
        schedule=tuple(schedule),
    )


def census_pattern_count(tile_mask: np.ndarray) -> int:
    """Distinct *live* tile-row census patterns of one plane mask.

    Exactly the grouping statistic :func:`_lower_gemm_skip` unrolls over —
    a pattern is a distinct row of the ``(mt, kt)`` census, and it is live
    when at least one of its tiles survives the ballot.  A count above
    :data:`GROUP_UNROLL_LIMIT` means the skip-loop specialization falls
    back to the dense schedule; the dynamic-graph patch policy watches the
    same number so a mutation stream that drags a census across the
    fallback boundary (in either direction) triggers a recompile instead
    of a key patch.
    """
    mask = np.ascontiguousarray(np.asarray(tile_mask, dtype=bool))
    if mask.ndim != 2:
        raise ShapeError(f"census mask must be 2-D, got shape {mask.shape}")
    patterns = np.unique(mask, axis=0)
    return int(sum(1 for pattern in patterns if pattern.any()))


def _lower_gemm_skip(
    *,
    m: int,
    n: int,
    bits_b: int,
    a_padded_vectors: int,
    a_k_words: int,
    tile_mask: np.ndarray,
    name: str,
) -> Program | None:
    """Skip-loop specialization of a censused 1-bit left operand.

    Returns ``None`` when the census has more distinct tile-row patterns
    than :data:`GROUP_UNROLL_LIMIT` (the caller falls back to dense).
    """
    mask = np.ascontiguousarray(np.asarray(tile_mask, dtype=bool))
    patterns, inverse = np.unique(mask, axis=0, return_inverse=True)
    live = [g for g in range(len(patterns)) if patterns[g].any()]
    if len(live) > GROUP_UNROLL_LIMIT:
        return None
    env: dict[str, np.ndarray] = {}
    body: list[Stmt] = [
        Line("a64 = a_words[0].view(np.uint64)"),
        Line(
            "bT = np.ascontiguousarray("
            f"b_words.view(np.uint64).transpose(0, 2, 1)[:, :, :{n}])"
        ),
        Line(f"out = np.zeros((1, {bits_b}, {a_padded_vectors}, {n}), dtype=np.int64)"),
        Line("o = out[0]"),
    ]
    sliced_groups = 0
    for g in live:
        tile_rows = np.flatnonzero(inverse == g)
        rows = (tile_rows[:, None] * 8 + np.arange(8)).ravel()
        cols = np.flatnonzero(patterns[g])
        words = (cols[:, None] * 2 + np.arange(2)).ravel()  # uint64 words
        group, sliced = _group_stmts(g, rows, words, bits_b=bits_b, n=n, env=env)
        sliced_groups += sliced
        body.append(group)
    body.append(Line(f"return out[:, :, :{m}, :]"))
    schedule = (
        "fuse-b-planes",
        "widen-words:u64",
        f"specialize-skip-loop:groups={len(live)}",
        f"contiguous-slices:{sliced_groups}/{len(live)}",
        "unroll-bit-planes:1",
    )
    return Program(
        name=name,
        args=("a_words", "b_words"),
        body=tuple(body),
        env=env,
        schedule=schedule,
    )


def _group_stmts(
    g: int,
    rows: np.ndarray,
    words: np.ndarray,
    *,
    bits_b: int,
    n: int,
    env: dict[str, np.ndarray],
) -> tuple[Block, int]:
    """Emit one census group's statements; returns (block, fully_sliced)."""
    row_run = _contiguous_run(rows)
    word_run = _contiguous_run(words)
    wg = int(words.size)
    if word_run is not None:
        w_lo, w_hi = word_run
        b_expr = f"bT[:, None, {w_lo}:{w_hi}, :]"

        def a_words_expr(rows_expr: str) -> str:
            return f"a64[{rows_expr}, {w_lo}:{w_hi}]"

    else:
        w_name = f"g{g}_w"
        env[w_name] = np.ascontiguousarray(words.astype(np.intp))
        b_expr = f"bT[:, {w_name}][:, None]"

        def a_words_expr(rows_expr: str) -> str:
            return f"a64[{rows_expr}][:, {w_name}]"

    rb = _row_block(int(rows.size), bytes_per_row=bits_b * wg * n * _TEMP_BYTES_PER_ELEM)
    stmts: list[Stmt] = []
    label = f"census group {g}: {rows.size} rows x {wg} u64 words"
    fully_sliced = 1 if (row_run is not None and word_run is not None) else 0
    blk = (
        "blk = popcount64({a}[None, :, :, None] & {b})"
        ".sum(axis=2, dtype=np.int64)"
    )
    if row_run is not None:
        r_lo, r_hi = row_run
        if r_hi - r_lo <= rb:
            stmts.append(Line(blk.format(a=a_words_expr(f"{r_lo}:{r_hi}"), b=b_expr)))
            stmts.append(Line(f"o[:, {r_lo}:{r_hi}, :] = blk"))
        else:
            inner = (
                # Clamp the last block to the group's own rows: running
                # past r_hi would compute (and store) other groups' rows.
                Line(f"r1 = min(r0 + {rb}, {r_hi})"),
                Line(blk.format(a=a_words_expr("r0:r1"), b=b_expr)),
                Line("o[:, r0:r1, :] = blk"),
            )
            stmts.append(_strided_loop("r0", r_lo, r_hi, rb, inner))
    else:
        r_name = f"g{g}_r"
        env[r_name] = np.ascontiguousarray(rows.astype(np.intp))
        if rows.size <= rb:
            stmts.append(Line(blk.format(a=a_words_expr(r_name), b=b_expr)))
            stmts.append(Line(f"o[:, {r_name}, :] = blk"))
        else:
            inner = (
                Line(f"gr = {r_name}[r0:r0 + {rb}]"),
                Line(blk.format(a=a_words_expr("gr"), b=b_expr)),
                Line("o[:, gr, :] = blk"),
            )
            stmts.append(_strided_loop("r0", 0, int(rows.size), rb, inner))
    return Block(label, tuple(stmts)), fully_sliced


# --------------------------------------------------------------------- #
# Fused pack + census
# --------------------------------------------------------------------- #
def lower_pack_census(m: int, k: int, name: str = "pack_census") -> Program:
    """One emitted pass: bit-pack a 0/1 matrix, ballot its 8x128 tiles,
    and take degree row-sums — the fused form of ``pack_matrix`` +
    ``tile_nonzero_mask`` + the adjacency degree reduction.

    The emitted function maps ``fn(adj) -> (words, mask, degrees)`` and
    is bit-identical to the unfused pipeline by construction: it performs
    the same ``packbits``/word-view/tile-reduce operations with the
    plan's padding constants baked in, but in a single walk over one
    padded intermediate (no separate ``bit_decompose`` plane
    materialization, no second traversal of the packed words to census
    them from cold memory).
    """
    if m < 0 or k < 0:
        raise ShapeError(f"matrix dims must be non-negative, got {(m, k)}")
    pv = pad_to(max(m, 1), TC_M)
    pk = pad_to(max(k, 1), TC_K)
    kw = pk // WORD_BITS
    body: list[Stmt] = [Line("plane = (adj.astype(np.uint8) & np.uint8(1))[None]")]
    schedule = ["fuse-pack-census", "unroll-bit-planes:1"]
    if pv != m or pk != k:
        body.append(
            Line(f"plane = np.pad(plane, ((0, 0), (0, {pv - m}), (0, {pk - k})))")
        )
    else:
        schedule.append("skip-pad")
    body.extend(
        [
            Line("packed = np.packbits(plane, axis=-1, bitorder='little')"),
            Line(
                "words = np.ascontiguousarray(packed).view(np.uint32)"
                f".reshape(1, {pv}, {kw})"
            ),
            # Census the words while they are still cache-resident: the
            # per-thread uint4 OR then the 8-row warp ballot of §4.3.
            Line(f"tiles = words[0].reshape({pv // 8}, 8, {kw // 4}, 4)"),
            Line(
                "mask = np.bitwise_or.reduce("
                "np.bitwise_or.reduce(tiles, axis=-1), axis=1) != 0"
            ),
            Line("degrees = adj.sum(axis=1, dtype=np.float64)[:, None]"),
            Line("return words, mask, degrees"),
        ]
    )
    return Program(
        name=name,
        args=("adj",),
        body=tuple(body),
        schedule=tuple(schedule),
    )


# --------------------------------------------------------------------- #
# Whole-layer lowering
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LayerLowering:
    """The IR programs of one layer's quantize -> pack -> census -> gemm
    pipeline, plus their combined content digest."""

    layer_index: int
    programs: tuple[Program, ...]

    @property
    def digest(self) -> str:
        """Combined content key over every program of the layer."""
        h = hashlib.blake2b(digest_size=16)
        for program in self.programs:
            h.update(program.digest().encode())
        return h.hexdigest()

    def schedules(self) -> dict[str, tuple[str, ...]]:
        """Applied schedule transforms, keyed by program name."""
        return {p.name: p.schedule for p in self.programs}


def _step_padded_a(step: GemmStep) -> tuple[int, int]:
    """``(padded_vectors, k_words)`` of a step's packed left operand."""
    spec = step.spec
    return (
        pad_to(max(spec.m, 1), TC_M),
        pad_to(max(spec.k, 1), TC_K) // WORD_BITS,
    )


def lower_layer_plan(
    layer: LayerPlan,
    *,
    tile_mask: np.ndarray | None = None,
    aggregate_first: bool = True,
) -> LayerLowering:
    """Lower one :class:`~repro.plan.ir.LayerPlan` into IR programs.

    Produces, in execution order: the fused pack+census program for the
    aggregation adjacency (when the layer's aggregate step carries a
    census node), then one GEMM program per step — skip-specialized for
    the aggregation when its measured ``tile_mask`` is supplied, dense
    unrolled otherwise.  Quantize sites have no emitted program (they are
    calibration table lookups, not loops), but their bitwidths are baked
    into the pack/gemm programs lowered here.
    """
    programs: list[Program] = []
    agg = layer.aggregate
    if agg.census is not None:
        programs.append(
            lower_pack_census(
                agg.spec.m, agg.spec.k, name=f"l{layer.index}_pack_census"
            )
        )
    ordered = [("aggregate", layer.aggregate), ("update", layer.update)]
    if not aggregate_first:
        ordered.reverse()
    for tag, step in ordered:
        pv, kw = _step_padded_a(step)
        mask = tile_mask if (step is agg and step.spec.bits_a == 1) else None
        programs.append(
            lower_gemm(
                m=step.spec.m,
                n=step.spec.n,
                bits_a=step.spec.bits_a,
                bits_b=step.spec.bits_b,
                a_padded_vectors=pv,
                a_k_words=kw,
                tile_mask=mask,
                name=f"l{layer.index}_{tag}_gemm",
            )
        )
    return LayerLowering(layer_index=layer.index, programs=tuple(programs))
