"""A small schedulable LoopIR for plan-specialized kernel generation.

The IR is deliberately tiny — the SYS_ATL/Exo idea scaled to what this
host pipeline needs.  A :class:`Program` is a named loop nest over bit
planes / tile rows / tile-row groups whose leaves are straight-line
numpy statements (:class:`Line`); loops over *compile-time-constant*
domains (bit planes, the tile groups of a measured census) can be
rewritten by the schedule transforms in :mod:`repro.codegen.lower`:

* ``unroll`` replaces a constant-trip-count :class:`Loop` with its
  instantiated bodies (bit-plane loops become per-plane statements with
  literal plane indices);
* skip-loop specialization replaces a masked tile loop with per-group
  blocks that iterate a precomputed non-zero-tile index list baked into
  the program's :attr:`Program.env`.

Rendering (:meth:`Program.source`) produces plain Python/numpy source —
no new dependencies — which :func:`repro.codegen.emit.compile_program`
turns into a callable.  :meth:`Program.digest` is the content key the
kernel cache stores compiled callables under: it covers the rendered
source, every ``env`` constant's bytes, and the emitter version, so a
mutated census or bitwidth re-keys (and therefore recompiles) while an
identical plan always hits.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from ..errors import ConfigError

__all__ = [
    "Block",
    "Line",
    "Loop",
    "Program",
    "substitute",
    "unroll",
]

#: Bumped whenever rendered-source semantics change, so stale cached
#: kernels from an older emitter can never be replayed.
EMIT_VERSION = 1


class Stmt:
    """Base class of every IR statement."""


@dataclass(frozen=True)
class Line(Stmt):
    """One straight-line statement, rendered verbatim.

    Index expressions inside the code are plain Python; loop variables
    appear as ordinary names so :func:`substitute` can instantiate them
    with literals during unrolling.
    """

    code: str


@dataclass(frozen=True)
class Block(Stmt):
    """A labelled straight-line group (renders a comment + its body)."""

    label: str
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Loop(Stmt):
    """A loop nest level.

    ``count`` is an ``int`` for compile-time-constant domains (bit
    planes, tile groups — the unrollable ones) or a source expression
    string for runtime domains (row blocks).  ``axis`` names what the
    loop walks (``"plane"``, ``"rows"``, ``"tile-rows"``, ``"groups"``)
    — transforms match on it.
    """

    var: str
    count: int | str
    body: tuple[Stmt, ...]
    axis: str = "rows"


@dataclass(frozen=True)
class Program:
    """A lowered kernel: loop nest + baked constants + applied schedule.

    Attributes
    ----------
    name:
        Python identifier of the emitted function.
    args:
        Positional argument names of the emitted function.
    body:
        The statement tree.
    env:
        Compile-time constant arrays (precomputed non-zero-tile index
        lists, gather maps) bound into the compiled namespace by name.
    schedule:
        Names of the schedule transforms applied during lowering, in
        order — the provenance trail tests and docs introspect.
    """

    name: str
    args: tuple[str, ...]
    body: tuple[Stmt, ...]
    env: Mapping[str, np.ndarray] = field(default_factory=dict)
    schedule: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ConfigError(f"program name must be an identifier, got {self.name!r}")
        for key in self.env:
            if not key.isidentifier():
                raise ConfigError(f"env name must be an identifier, got {key!r}")

    # ------------------------------------------------------------------ #
    def source(self) -> str:
        """Render the program as the source of one Python function."""
        lines = [f"def {self.name}({', '.join(self.args)}):"]
        rendered = list(_render(self.body, indent=1))
        lines.extend(rendered if rendered else ["    pass"])
        return "\n".join(lines) + "\n"

    def digest(self) -> str:
        """Content key of the compiled kernel: source + env + emitter version.

        Two programs share a digest exactly when they would compile to
        byte-identical behavior — same rendered source, same baked
        constants, same emitter.  A mutated census or bitwidth changes
        the source and/or the env bytes, hence the digest, hence forces
        a recompile; an identical plan always reuses the cached kernel.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(f"emit-version:{EMIT_VERSION}\n".encode())
        h.update(self.source().encode())
        for key in sorted(self.env):
            arr = np.ascontiguousarray(self.env[key])
            h.update(f"{key}:{arr.dtype}:{arr.shape}\n".encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    def loops(self) -> Iterator[Loop]:
        """Every loop in the tree, outermost first (for introspection)."""
        yield from _iter_loops(self.body)


def _render(stmts: tuple[Stmt, ...], indent: int) -> Iterator[str]:
    pad = "    " * indent
    for stmt in stmts:
        if isinstance(stmt, Line):
            yield pad + stmt.code
        elif isinstance(stmt, Block):
            if stmt.label:
                yield pad + f"# {stmt.label}"
            yield from _render(stmt.body, indent)
        elif isinstance(stmt, Loop):
            yield pad + f"for {stmt.var} in range({stmt.count}):"
            yield from _render(stmt.body, indent + 1)
        else:
            raise ConfigError(f"cannot render IR node {type(stmt).__name__}")


def _iter_loops(stmts: tuple[Stmt, ...]) -> Iterator[Loop]:
    for stmt in stmts:
        if isinstance(stmt, Loop):
            yield stmt
            yield from _iter_loops(stmt.body)
        elif isinstance(stmt, Block):
            yield from _iter_loops(stmt.body)


def substitute(stmts: tuple[Stmt, ...], var: str, value: object) -> tuple[Stmt, ...]:
    """Replace every whole-word occurrence of ``var`` with ``value``.

    The instantiation primitive unrolling is built on: loop variables are
    ordinary names in :class:`Line` code, so substituting a literal for
    the name specializes the body to one iteration.
    """
    pattern = re.compile(rf"\b{re.escape(var)}\b")
    replacement = str(value)
    out: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, Line):
            out.append(Line(pattern.sub(replacement, stmt.code)))
        elif isinstance(stmt, Block):
            out.append(Block(stmt.label, substitute(stmt.body, var, value)))
        elif isinstance(stmt, Loop):
            if stmt.var == var:  # inner loop shadows the name
                out.append(stmt)
                continue
            count = stmt.count
            if isinstance(count, str):
                count = pattern.sub(replacement, count)
            out.append(Loop(stmt.var, count, substitute(stmt.body, var, value), stmt.axis))
        else:
            raise ConfigError(f"cannot substitute into {type(stmt).__name__}")
    return tuple(out)


def unroll(loop: Loop) -> Block:
    """Fully unroll a constant-trip-count loop into instantiated bodies.

    The bit-plane schedule transform: a ``Loop`` over a plan's concrete
    bitwidth becomes one statement group per plane, each with the plane
    index as a literal — no per-iteration Python loop overhead and every
    index expression constant-folded by the emitted source itself.
    """
    if not isinstance(loop.count, int):
        raise ConfigError(
            f"cannot unroll loop over runtime domain range({loop.count!r})"
        )
    body: list[Stmt] = []
    for value in range(loop.count):
        body.append(Block(f"{loop.var} = {value}", substitute(loop.body, loop.var, value)))
    return Block(f"unrolled {loop.axis} loop {loop.var}", tuple(body))
