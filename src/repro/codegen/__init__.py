"""Plan-specialized kernel generation: LoopIR → emitted numpy → callable.

The ROADMAP's "Plan IR → generated kernels, Exo/SYS_ATL-style" item.
Instead of dispatching every GEMM to a fully generic engine, a compiled
:class:`~repro.plan.ir.ExecutionPlan` is lowered through a small
schedulable loop IR (:mod:`repro.codegen.loopir`) into kernels
specialized to that plan's bitwidths, padded shapes, and measured tile
census — bit-plane loops unrolled to constants, pack+census fused into
one pass, the :class:`~repro.tc.kernel.TileSkipPlan` baked in as
precomputed nonzero-tile index lists.  Emission
(:mod:`repro.codegen.emit`) is textual Python/numpy source compiled with
``compile()``/``exec`` — zero new hard dependencies, optional numba JIT
when importable — and compiled kernels live in the content-keyed
``kernel`` segment shared with serving :class:`~repro.plan.cache.PlanCache`
instances.  The whole pipeline is surfaced as the ``codegen`` entry of
the standard backend registry, so dispatch, autotuning, exploration,
plan exchange, and differential testing all sweep it with no special
cases.
"""

from .backend import (
    CompiledKernel,
    census_digest,
    codegen_backend,
    fused_pack_adjacency,
    gemm_kernel,
    gemm_kernel_key,
    kernel_cache_segment,
    prepare_plan_kernels,
)
from .emit import compile_program, maybe_jit, popcount64
from .loopir import EMIT_VERSION, Block, Line, Loop, Program, substitute, unroll
from .lower import (
    LayerLowering,
    census_pattern_count,
    lower_gemm,
    lower_layer_plan,
    lower_pack_census,
    unroll_bit_planes,
)

__all__ = [
    "EMIT_VERSION",
    "Block",
    "CompiledKernel",
    "LayerLowering",
    "Line",
    "Loop",
    "Program",
    "census_digest",
    "census_pattern_count",
    "codegen_backend",
    "compile_program",
    "fused_pack_adjacency",
    "gemm_kernel",
    "gemm_kernel_key",
    "kernel_cache_segment",
    "lower_gemm",
    "lower_layer_plan",
    "lower_pack_census",
    "maybe_jit",
    "popcount64",
    "prepare_plan_kernels",
    "substitute",
    "unroll",
    "unroll_bit_planes",
]
