"""The ``codegen`` backend: compiled kernels behind the standard registry.

Glue between the LoopIR pipeline and the rest of the system:

* a process-wide, thread-safe **kernel segment** —
  :func:`kernel_cache_segment` — holding :class:`CompiledKernel` entries
  under content keys (shape/bitwidth constants + the census digest +
  emitter version).  Serving sessions mount this very segment as the
  ``"kernel"`` kind of their :class:`~repro.plan.cache.PlanCache`, so
  kernel hits/compiles appear in the same telemetry surface as packed
  weights and compiled plans, and a second replay of the same plan
  performs zero compiles;
* :func:`_run_codegen`, the registered ``run_planes`` implementation:
  lower-or-hit, then call the compiled kernel;
* :func:`prepare_plan_kernels`, the serving engine's pre-execution hook
  that compiles a plan's aggregation kernels ahead of the GEMM window
  and reports ``plan_lower`` / ``kernel_compile`` seconds for the PAG;
* :func:`fused_pack_adjacency`, the fused pack+census entry point used
  by :func:`repro.gnn.quantized.pack_batch_adjacency`.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.bitpack import TC_K, TC_M, PackedBits, pad_to, tile_nonzero_mask
from ..core.bitops import WORD_BITS
from ..errors import ShapeError
from ..plan.cache import ThreadSafeLRUCache, artifact_digest
from ..plan.registry import Backend, BackendCaps, BackendPrice, PriceContext
from ..tc.kernel import TileSkipPlan
from .emit import compile_program
from .loopir import EMIT_VERSION, Program
from .lower import lower_gemm, lower_pack_census

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..plan.ir import ExecutionPlan

__all__ = [
    "CompiledKernel",
    "census_digest",
    "codegen_backend",
    "fused_pack_adjacency",
    "gemm_kernel",
    "gemm_kernel_key",
    "kernel_cache_segment",
    "prepare_plan_kernels",
]


@dataclass(frozen=True)
class CompiledKernel:
    """One compiled kernel: the program, its callable, and build costs."""

    program: Program
    fn: object
    #: Program digest (source + env + emitter version) — the recompile
    #: trigger the cache key carries.
    digest: str
    #: Seconds spent lowering (census grouping, IR construction).
    lower_s: float
    #: Seconds spent in ``compile()``/``exec``.
    compile_s: float

    @property
    def nbytes(self) -> int:
        """Cache-accounted bytes: rendered source plus baked constants."""
        return len(self.program.source()) + sum(
            np.asarray(v).nbytes for v in self.program.env.values()
        )


def _kernel_nbytes(value: object) -> int:
    return int(getattr(value, "nbytes", 0) or 0)


#: The process-wide kernel segment.  One segment per process — not per
#: session — because a compiled kernel is pure (keyed by content, closed
#: over nothing mutable) and compilation is the cost being amortized.
#: Verified: every hit re-checks the kernel's program digest, so a
#: poisoned entry is discarded and recompiled instead of replayed.
_KERNEL_SEGMENT = ThreadSafeLRUCache(
    256, size_of=_kernel_nbytes, digest_of=artifact_digest
)


def kernel_cache_segment() -> ThreadSafeLRUCache:
    """The shared ``"kernel"`` cache segment (mounted by serving sessions)."""
    return _KERNEL_SEGMENT


def census_digest(mask: np.ndarray | None) -> str:
    """Content digest of a zero-tile census mask (``"dense"`` when absent).

    The census component of every gemm kernel key: a structure mutation
    that changes the census changes this digest, which changes the key —
    the property that makes a stale compiled kernel unreachable after a
    dynamic-graph mutation.
    """
    if mask is None:
        return "dense"
    arr = np.ascontiguousarray(np.asarray(mask, dtype=bool))
    h = hashlib.blake2b(digest_size=8)
    h.update(f"{arr.shape}".encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def gemm_kernel_key(
    *,
    m: int,
    n: int,
    bits_a: int,
    bits_b: int,
    a_padded_vectors: int,
    a_k_words: int,
    tile_mask: np.ndarray | None = None,
) -> tuple:
    """The kernel-segment content key :func:`gemm_kernel` caches under.

    Public so invalidation paths (the dynamic-graph session retiring
    kernels compiled against a superseded census) can reconstruct and
    discard the exact key without recompiling anything.
    """
    return (
        "kernel",
        "gemm",
        bits_a,
        bits_b,
        m,
        n,
        a_padded_vectors,
        a_k_words,
        census_digest(tile_mask),
        EMIT_VERSION,
    )


def _build_kernel(builder, jit: bool = False) -> CompiledKernel:
    """Lower + compile, timing the two stages separately."""
    t0 = time.perf_counter()
    program = builder()
    t1 = time.perf_counter()
    fn = compile_program(program, jit=jit)
    t2 = time.perf_counter()
    return CompiledKernel(
        program=program,
        fn=fn,
        digest=program.digest(),
        lower_s=t1 - t0,
        compile_s=t2 - t1,
    )


def gemm_kernel(
    *,
    m: int,
    n: int,
    bits_a: int,
    bits_b: int,
    a_padded_vectors: int,
    a_k_words: int,
    tile_mask: np.ndarray | None = None,
) -> CompiledKernel:
    """Fetch-or-compile the specialized kernel for one product shape.

    The cache key is pure content: the baked shape/bitwidth constants,
    the census digest (``"dense"`` when no census applies), and the
    emitter version.  Same plan → same key → the compiled kernel is
    reused with zero lowering work; a mutated census or bitwidth changes
    the key and recompiles.
    """
    key = gemm_kernel_key(
        m=m,
        n=n,
        bits_a=bits_a,
        bits_b=bits_b,
        a_padded_vectors=a_padded_vectors,
        a_k_words=a_k_words,
        tile_mask=tile_mask,
    )
    return _KERNEL_SEGMENT.get_or_build(
        key,
        lambda: _build_kernel(
            lambda: lower_gemm(
                m=m,
                n=n,
                bits_a=bits_a,
                bits_b=bits_b,
                a_padded_vectors=a_padded_vectors,
                a_k_words=a_k_words,
                tile_mask=tile_mask,
            )
        ),
    )


# --------------------------------------------------------------------- #
# The registered backend
# --------------------------------------------------------------------- #
def _run_codegen(
    a_packed: PackedBits,
    b_packed: PackedBits,
    tile_masks: Sequence[np.ndarray] | None = None,
) -> np.ndarray:
    """Plane products through a plan-specialized compiled kernel.

    1-bit left operands are executed through the skip-specialized kernel
    of their census (supplied ``tile_masks`` or balloted here, exactly
    like the ``sparse`` engine); wider operands take the dense unrolled
    kernel, which is correct regardless of any census (it computes every
    tile, and zero tiles contribute nothing).
    """
    mask = None
    if a_packed.bits == 1:
        mask = (
            np.asarray(tile_masks[0])
            if tile_masks is not None
            else tile_nonzero_mask(a_packed.plane(0))
        )
        grid = (a_packed.padded_vectors // 8, a_packed.k_words // 4)
        if mask.shape != grid:
            raise ShapeError(
                f"tile mask shape {mask.shape} does not match the "
                f"{grid} tile grid of the plane"
            )
    kernel = gemm_kernel(
        m=a_packed.logical_vectors,
        n=b_packed.logical_vectors,
        bits_a=a_packed.bits,
        bits_b=b_packed.bits,
        a_padded_vectors=a_packed.padded_vectors,
        a_k_words=a_packed.k_words,
        tile_mask=mask,
    )
    return kernel.fn(
        np.ascontiguousarray(a_packed.words), np.ascontiguousarray(b_packed.words)
    )


#: Analytic-pricer constants of the codegen backend.  Deliberately
#: conservative: the analytic estimate never undercuts the engine the
#: kernel specializes (``sparse`` for censused products, ``packed`` for
#: dense ones), so on a cold table the dispatcher keeps its historical
#: choices and codegen is routed *only* when the autotuner's measured
#: medians say it wins — the acceptance mode of this backend.
CODEGEN_CALL_OVERHEAD_S = 80e-6
CODEGEN_GROUP_OVERHEAD_S = 160e-6
CODEGEN_PRICE_MARGIN = 1.05


def _price_codegen(ctx: PriceContext) -> BackendPrice:
    """Conservative analytic price (see the constants' docstring)."""
    r, spec = ctx.rates, ctx.spec
    fraction = ctx.tile_fraction
    if spec.bits_a == 1 and fraction is not None:
        groups = min(max(spec.m // 8, 1), math.ceil(1.0 / max(fraction, 1e-9)))
        seconds = CODEGEN_PRICE_MARGIN * (
            ctx.pairs * r.packed_pair_overhead_s
            + ctx.flops * fraction / r.packed_flops
            + groups * r.sparse_group_overhead_s
        )
        return BackendPrice(
            seconds=seconds + CODEGEN_CALL_OVERHEAD_S, tile_fraction=fraction
        )
    seconds = CODEGEN_PRICE_MARGIN * (
        ctx.pairs * r.packed_pair_overhead_s + ctx.flops / r.packed_flops
    )
    return BackendPrice(seconds=seconds + CODEGEN_CALL_OVERHEAD_S)


def codegen_backend() -> Backend:
    """A fresh instance of the ``codegen`` registry entry."""
    return Backend(
        name="codegen",
        run_planes=_run_codegen,
        caps=BackendCaps(
            consumes_tile_masks=True,
            summary="LoopIR-lowered kernels compiled per plan "
            "(fused census, unrolled planes, baked skip loops)",
        ),
        pricer=_price_codegen,
    )


# --------------------------------------------------------------------- #
# Serving integration
# --------------------------------------------------------------------- #
def prepare_plan_kernels(plan: "ExecutionPlan", adjacency) -> tuple[float, float]:
    """Compile a plan's codegen kernels ahead of its GEMM windows.

    Walks the plan's steps and fetches-or-compiles the kernel of every
    ``codegen``-dispatched product whose operand constants are known
    before execution: censused aggregations specialize against
    ``adjacency`` (a :class:`~repro.gnn.quantized.PackedAdjacency`), and
    multi-bit updates take the dense kernel of their padded shape.
    (1-bit *update* products census their packed activations at run
    time, so their kernels compile lazily inside the GEMM window.)

    Returns ``(lower_seconds, compile_seconds)`` summed over the fresh
    builds only — a fully warmed plan reports ``(0.0, 0.0)`` because
    every fetch is a kernel-segment hit.
    """
    lower_s = 0.0
    compile_s = 0.0
    before = _KERNEL_SEGMENT.stats.insertions
    kernels: list[CompiledKernel] = []
    for step in plan.gemm_steps():
        if step.backend != "codegen":
            continue
        spec = step.spec
        if spec.role == "aggregate" and spec.bits_a == 1:
            kernels.append(
                gemm_kernel(
                    m=spec.m,
                    n=spec.n,
                    bits_a=spec.bits_a,
                    bits_b=spec.bits_b,
                    a_padded_vectors=adjacency.packed.padded_vectors,
                    a_k_words=adjacency.packed.k_words,
                    tile_mask=adjacency.plan.masks[0],
                )
            )
        elif spec.bits_a > 1:
            kernels.append(
                gemm_kernel(
                    m=spec.m,
                    n=spec.n,
                    bits_a=spec.bits_a,
                    bits_b=spec.bits_b,
                    a_padded_vectors=pad_to(max(spec.m, 1), TC_M),
                    a_k_words=pad_to(max(spec.k, 1), TC_K) // WORD_BITS,
                )
            )
    if _KERNEL_SEGMENT.stats.insertions > before:
        # Only fresh builds charge compile phases; hits replay for free.
        lower_s = sum(k.lower_s for k in kernels)
        compile_s = sum(k.compile_s for k in kernels)
    return lower_s, compile_s


# --------------------------------------------------------------------- #
# Fused pack + census entry point
# --------------------------------------------------------------------- #
def fused_pack_adjacency(
    adjacency: np.ndarray,
) -> tuple[PackedBits, TileSkipPlan, np.ndarray]:
    """Pack a 0/1 adjacency, ballot its tiles and sum degrees in one pass.

    The compiled form of ``pack_matrix(adj, 1, "col")`` +
    ``plan_tile_skip`` + the degree reduction, bit-identical to the
    unfused pipeline (same ``packbits``/word-view/tile-OR operations,
    same padding rule) but executed as one emitted function per
    adjacency shape, cached in the kernel segment.
    """
    arr = np.asarray(adjacency)
    if arr.ndim != 2:
        raise ShapeError(f"adjacency must be 2-D, got shape {arr.shape}")
    m, k = arr.shape
    key = ("kernel", "pack_census", m, k, EMIT_VERSION)
    kernel = _KERNEL_SEGMENT.get_or_build(
        key, lambda: _build_kernel(lambda: lower_pack_census(m, k))
    )
    words, mask, degrees = kernel.fn(arr)
    packed = PackedBits(
        words=words,
        bits=1,
        layout="col",
        logical_vectors=m,
        logical_k=k,
        pad_vectors=TC_M,
    )
    return packed, TileSkipPlan(masks=(mask,)), degrees
