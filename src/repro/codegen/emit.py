"""Compile lowered :class:`~repro.codegen.loopir.Program`\\ s into callables.

Emission is textual Python/numpy source run through ``compile()`` +
``exec`` — zero new hard dependencies.  Namespace hygiene is part of the
contract: every program executes into a *fresh* dict seeded with exactly
the names it needs (``np``, the popcount primitives, its own ``env``
constants), never into this module's globals, so compiling a thousand
kernels leaks nothing and two kernels can never observe each other's
constants.

The optional numba path: when numba is importable, :func:`maybe_jit`
attempts an ``njit`` compile of the emitted function and transparently
falls back to the plain callable on *any* numba failure (these kernels
lean on fancy indexing and ``np.bitwise_count``, which older numba
releases reject).  When numba is absent — the normal case for this repo's
pinned environment — the plain compiled function is used and nothing is
imported.  The policy is documented in ``docs/CODEGEN.md``.
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import popcount
from ..errors import ConfigError
from .loopir import Program

__all__ = ["compile_program", "maybe_jit", "popcount64"]


if hasattr(np, "bitwise_count"):

    def popcount64(words: np.ndarray) -> np.ndarray:
        """Per-element population count of uint64 words (hardware popcnt)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - numpy >= 2.0 always has bitwise_count

    def popcount64(words: np.ndarray) -> np.ndarray:
        """Per-element population count of uint64 words (uint32 fallback)."""
        halves = np.ascontiguousarray(words).view(np.uint32)
        return (
            popcount(halves[..., 0::2]).astype(np.uint8)
            + popcount(halves[..., 1::2]).astype(np.uint8)
        )


def compile_program(program: Program, *, jit: bool = False):
    """Compile a program's rendered source into a callable.

    The source is compiled with a synthetic filename carrying the
    program's digest (so tracebacks name the exact kernel) and executed
    into a fresh namespace — module globals are never touched.  With
    ``jit=True`` the result is additionally offered to numba via
    :func:`maybe_jit`.
    """
    source = program.source()
    digest = program.digest()
    namespace: dict[str, object] = {
        "np": np,
        "popcount": popcount,
        "popcount64": popcount64,
    }
    for key, value in program.env.items():
        namespace[key] = value
    code = compile(source, f"<codegen:{program.name}:{digest[:12]}>", "exec")
    exec(code, namespace)  # noqa: S102 - the source is generated, not user input
    fn = namespace.get(program.name)
    if not callable(fn):
        raise ConfigError(
            f"program {program.name!r} did not define a callable of its own name"
        )
    return maybe_jit(fn) if jit else fn


def maybe_jit(fn):
    """Wrap ``fn`` with numba's ``njit`` when numba is importable and the
    compile succeeds; otherwise return ``fn`` unchanged.

    Never raises: a missing numba, an unsupported construct, or any other
    numba-side failure all silently keep the plain-numpy callable — the
    JIT is an opportunistic acceleration, not a dependency.
    """
    try:  # pragma: no cover - numba absent from the pinned environment
        import numba
    except Exception:
        return fn
    try:  # pragma: no cover - exercised only where numba is installed
        return numba.njit(cache=False)(fn)
    except Exception:
        return fn
