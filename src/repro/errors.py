"""Exception hierarchy for the QGTC reproduction.

All library-raised errors derive from :class:`QGTCError` so callers can
catch everything produced by ``repro`` with a single ``except`` clause while
still being able to distinguish configuration mistakes from shape mismatches.
"""

from __future__ import annotations


class QGTCError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class BitwidthError(QGTCError, ValueError):
    """An unsupported or inconsistent quantization bitwidth was requested.

    Valid bitwidths are integers in ``[1, 32]``; the TC emulator additionally
    requires the adjacency operand of an aggregation GEMM to be 1-bit.
    """


class ShapeError(QGTCError, ValueError):
    """Operand shapes are incompatible with the requested operation."""


class PackingError(QGTCError, ValueError):
    """A packed bit-tensor has invalid layout metadata.

    Raised, for example, when a row-packed tensor is passed where a
    column-packed tensor is expected, or when the stored logical shape does
    not match the padded word storage.
    """


class DeviceError(QGTCError, ValueError):
    """An emulated-device description is inconsistent (e.g. zero bandwidth)."""


class PartitionError(QGTCError, ValueError):
    """Graph partitioning was asked for an impossible configuration.

    Examples: more parts than vertices, non-positive part count, or a graph
    whose CSR arrays are malformed.
    """


class ConfigError(QGTCError, ValueError):
    """A model / runtime configuration object failed validation."""


class PoolSaturated(QGTCError, RuntimeError):
    """The serving layer refused a request because capacity is exhausted.

    Raised by non-blocking pool intake when a shard queue is full and by
    the async gateway when a request cannot be admitted within its queue
    timeout — the fast-fail alternative to blocking an open-loop caller
    behind an unbounded backlog.  Catch it to shed load (retry later,
    degrade, or route elsewhere); it signals pressure, not a bug.
    """
