"""Exception hierarchy for the QGTC reproduction.

All library-raised errors derive from :class:`QGTCError` so callers can
catch everything produced by ``repro`` with a single ``except`` clause while
still being able to distinguish configuration mistakes from shape mismatches.

Retryable vs. fatal
-------------------

The serving layer splits failures along one axis: *would the same request
succeed if tried again?*

* :class:`RetryableError` — transient conditions (queue pressure, a worker
  thread dying mid-batch, an injected fault).  The gateway's bounded-retry
  loop and the per-step backend fallback in
  ``repro.serving.supervision`` re-attempt these.
* :class:`FatalError` — conditions retrying cannot fix.  The deterministic
  validation errors (:class:`ShapeError`, :class:`BitwidthError`,
  :class:`PackingError`, :class:`ConfigError`, :class:`DeviceError`,
  :class:`PartitionError`) behave the same way: the request itself is
  malformed, so they are surfaced immediately without retry.

:func:`is_retryable` encodes the policy in one place.  Exceptions from
*outside* this hierarchy (a miscompiled kernel raising ``IndexError``,
say) are treated as retryable — the failure may be specific to one
backend, and the fallback chain exists exactly for that case.
"""

from __future__ import annotations


class QGTCError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class BitwidthError(QGTCError, ValueError):
    """An unsupported or inconsistent quantization bitwidth was requested.

    Valid bitwidths are integers in ``[1, 32]``; the TC emulator additionally
    requires the adjacency operand of an aggregation GEMM to be 1-bit.
    """


class ShapeError(QGTCError, ValueError):
    """Operand shapes are incompatible with the requested operation."""


class PackingError(QGTCError, ValueError):
    """A packed bit-tensor has invalid layout metadata.

    Raised, for example, when a row-packed tensor is passed where a
    column-packed tensor is expected, or when the stored logical shape does
    not match the padded word storage.
    """


class DeviceError(QGTCError, ValueError):
    """An emulated-device description is inconsistent (e.g. zero bandwidth)."""


class PartitionError(QGTCError, ValueError):
    """Graph partitioning was asked for an impossible configuration.

    Examples: more parts than vertices, non-positive part count, or a graph
    whose CSR arrays are malformed.
    """


class ConfigError(QGTCError, ValueError):
    """A model / runtime configuration object failed validation."""


class RetryableError(QGTCError, RuntimeError):
    """A transient serving failure: the same request may succeed if retried.

    The gateway's bounded-retry loop catches this family (with exponential
    backoff + jitter) and the per-step recovery in
    ``repro.serving.supervision`` retries the failing GEMM on a fallback
    backend.  Subclass this for failure modes that a retry can plausibly
    clear; use :class:`FatalError` for ones it cannot.
    """


class FatalError(QGTCError, RuntimeError):
    """A failure retrying cannot fix; surfaced immediately, never retried.

    Use this for invariant violations discovered at serving time — e.g. a
    cache artifact whose digest cannot be re-derived, or an exhausted
    fallback chain whose root cause was deterministic.
    """


class PoolSaturated(RetryableError):
    """The serving layer refused a request because capacity is exhausted.

    Raised by non-blocking pool intake when a shard queue is full and by
    the async gateway when a request cannot be admitted within its queue
    timeout — the fast-fail alternative to blocking an open-loop caller
    behind an unbounded backlog.  Catch it to shed load (retry later,
    degrade, or route elsewhere); it signals pressure, not a bug.

    Although nominally retryable, the gateway deliberately does *not*
    auto-retry saturation: shedding must stay a fast-fail so open-loop
    callers apply their own backpressure policy.
    """


class WorkerDied(RetryableError):
    """A pool worker thread crashed outside per-request handling.

    With supervision enabled the pool respawns the worker and re-queues
    its in-flight requests, so callers normally never see this.  With
    supervision disabled (``PoolConfig(supervise=False)``) every future
    stranded on the dead worker's queue fails with ``WorkerDied`` — the
    diagnostic alternative to blocking forever — and later submissions
    routed to that shard fail fast the same way.
    """


class InjectedFault(RetryableError):
    """A deterministic fault raised by ``repro.faultinject``.

    Never raised in production configurations: a :class:`~repro.faultinject.FaultPlan`
    must be explicitly threaded into the engine/pool/gateway for this to
    fire.  It is retryable by design, so injected failures exercise the
    same recovery paths a real transient failure would.
    """


def is_retryable(exc: BaseException) -> bool:
    """Return ``True`` when ``exc`` may clear on retry (see module docs).

    Policy: :class:`FatalError` and the deterministic ``ValueError``-family
    validation errors are not retryable; :class:`RetryableError` and any
    exception from outside the :class:`QGTCError` hierarchy are.  Control
    flow exceptions (``KeyboardInterrupt``, ``SystemExit``, and other
    non-``Exception`` ``BaseException`` subclasses) are never retried.
    """
    if not isinstance(exc, Exception):
        return False
    if isinstance(exc, FatalError):
        return False
    if isinstance(exc, RetryableError):
        return True
    if isinstance(exc, QGTCError) and isinstance(exc, ValueError):
        return False  # deterministic validation failure: retry cannot help
    return True
