"""DGL-like fp32 CUDA-core execution model (the paper's main baseline).

DGL runs GNN layers as a sequence of library kernels on CUDA cores:
cuSPARSE-style CSR SpMM for aggregation, cuBLAS fp32 GEMM for the update,
plus separate elementwise kernels for bias / activation (no fusion, no
quantization).  The model charges:

* SpMM — roofline of fp32 FLOPs at the calibrated SpMM efficiency vs CSR
  streaming traffic, **plus** the neighbour-row gather at scattered-access
  bandwidth (the term that makes SpMM memory-bound on wide features);
* GEMM — fp32 roofline;
* two elementwise kernels per layer (bias+ReLU);
* per-kernel library launch overhead and per-batch framework overhead
  (DGL's Python dataloader and dispatcher, calibrated against Figure 7a's
  launch-dominated datasets);
* fp32 transfers (dense features + CSR structure), reported separately
  like the QGTC path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigError
from ..gnn.models import GNNModel
from ..runtime.pcie import transfer_time
from ..runtime.profilebatch import BatchProfile
from ..runtime.report import EpochReport
from ..tc.hardware import RTX3090, DeviceSpec

__all__ = ["DGLRunConfig", "dgl_epoch_report"]

#: Per-batch host-side overhead of the DGL front-end (graph slicing,
#: Python dataloader, op dispatch).  Calibrated jointly with the library
#: launch cost so DGL's Figure 7a epoch times land near the paper's.
DGL_FRAMEWORK_OVERHEAD_S = 25e-6


@dataclass(frozen=True)
class DGLRunConfig:
    """Knobs of the DGL baseline model (defaults reproduce the paper)."""

    framework_overhead_s: float = DGL_FRAMEWORK_OVERHEAD_S
    #: Elementwise kernels per layer (bias add + ReLU).
    elementwise_kernels: int = 2

    def __post_init__(self) -> None:
        if self.framework_overhead_s < 0 or self.elementwise_kernels < 0:
            raise ConfigError("DGL overheads must be non-negative")

    @property
    def label(self) -> str:
        return "DGL (fp32)"


def _roofline(compute_s: float, stream_s: float) -> tuple[float, float]:
    """Split (compute, memory) so only the binding arm is charged."""
    if compute_s >= stream_s:
        return compute_s, 0.0
    return 0.0, stream_s


def dgl_epoch_report(
    profiles: Sequence[BatchProfile],
    model: GNNModel,
    config: DGLRunConfig | None = None,
    device: DeviceSpec = RTX3090,
    *,
    dataset: str = "",
) -> EpochReport:
    """Model one DGL fp32 inference epoch over the same batches as QGTC."""
    config = config or DGLRunConfig()
    report = EpochReport(system=config.label, dataset=dataset)
    fp32_rate = device.fp32_effective_tflops * 1e12
    spmm_rate = device.spmm_effective_tflops * 1e12
    dram = device.effective_dram_bw
    gather = device.gather_bw_gbs * 1e9

    for profile in profiles:
        n = profile.num_nodes
        nnz = profile.nnz_adj
        report.num_batches += 1
        report.framework_s += config.framework_overhead_s
        # fp32 payload: dense features + CSR adjacency, two transfers.
        payload = n * model.feature_dim * 4 + nnz * 8 + (n + 1) * 8
        report.transfer_s += transfer_time(payload, device, transactions=2).seconds

        for spec in model.layer_specs():
            agg_dim = spec.in_dim if model.aggregate_first else spec.out_dim

            # --- SpMM aggregation ---------------------------------------- #
            flops = 2.0 * nnz * agg_dim
            csr_bytes = nnz * 8 + (n + 1) * 8 + n * agg_dim * 4  # structure+out
            gather_bytes = nnz * agg_dim * 4  # neighbour feature rows
            compute, memory = _roofline(flops / spmm_rate, csr_bytes / dram)
            report.compute_s += compute
            report.memory_s += memory + gather_bytes / gather
            report.launch_s += device.library_launch_s
            report.kernels += 1

            # --- dense fp32 update GEMM ----------------------------------- #
            flops = 2.0 * n * spec.in_dim * spec.out_dim
            gemm_bytes = (n * (spec.in_dim + spec.out_dim) + spec.in_dim * spec.out_dim) * 4
            compute, memory = _roofline(flops / fp32_rate, gemm_bytes / dram)
            report.compute_s += compute
            report.memory_s += memory
            report.launch_s += device.library_launch_s
            report.kernels += 1

            # --- unfused elementwise kernels ------------------------------- #
            elem_bytes = 2 * n * spec.out_dim * 4
            for _ in range(config.elementwise_kernels):
                report.elementwise_s += device.library_launch_s + elem_bytes / dram
                report.kernels += 1
    return report
