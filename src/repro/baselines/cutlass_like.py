"""CUTLASS int4 Tensor Core GEMM model (Table 3 baseline).

CUTLASS (v2.7) offers int4 x int4 TC GEMM — the narrowest pre-packaged
quantized path.  Running QGTC's aggregation through it forces the 1-bit
adjacency up to 4 bits *and* caps embeddings below 4 bits at 4 (paper
§6.2: "we have to use a 4-bit presentation for both adjacent matrix and
embedding matrix").  Effective rate and setup cost are fit from Table 3's
CUTLASS column (t = 15.5 µs + flops / 26 TFLOPs; see
:mod:`repro.tc.hardware`'s calibration notes).
"""

from __future__ import annotations

from ..errors import ShapeError
from ..tc.costmodel import TimeBreakdown, tflops, useful_flops
from ..tc.hardware import RTX3090, DeviceSpec

__all__ = ["CUTLASS_SETUP_S", "cutlass_int4_gemm_time", "cutlass_int4_gemm_tflops"]

#: Fixed per-call cost of the CUTLASS int4 kernel (template dispatch +
#: launch), fit from Table 3's small-shape entries.
CUTLASS_SETUP_S = 15.5e-6


def cutlass_int4_gemm_time(
    m: int, k: int, n: int, device: DeviceSpec = RTX3090
) -> TimeBreakdown:
    """Modeled time of an int4 TC GEMM ``m x k x n`` via CUTLASS.

    CUTLASS's int4 kernels tile the output 64 columns wide; narrower ``n``
    wastes the tile proportionally (visible in Table 3, whose CUTLASS
    column saturates at ~12.5 TFLOP/s for D=32 vs ~24.7 for D=64).
    """
    if min(m, k, n) < 1:
        raise ShapeError(f"GEMM dims must be positive, got {(m, k, n)}")
    flops = useful_flops(m, k, n)
    tile_utilization = min(n / 64.0, 1.0)
    compute = flops / (device.int4_tc_effective_tflops * 1e12 * tile_utilization)
    stream = ((m * k + k * n) // 2 + 4 * m * n) / device.effective_dram_bw
    return TimeBreakdown(
        launch_s=CUTLASS_SETUP_S,
        compute_s=compute,
        stream_s=stream,
        reload_s=0.0,
    )


def cutlass_int4_gemm_tflops(
    m: int, k: int, n: int, device: DeviceSpec = RTX3090
) -> float:
    """Achieved TFLOP/s of the CUTLASS int4 path (Table 3's unit)."""
    t = cutlass_int4_gemm_time(m, k, n, device)
    return tflops(useful_flops(m, k, n), t.total_s)
