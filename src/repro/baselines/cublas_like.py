"""cuBLAS ``gemmEx`` int8 Tensor Core GEMM model (Figure 7c baseline).

cuBLAS's quantized TC path supports int8 as its minimum width; computing a
1-bit x n-bit QGNN aggregation through it means paying full int8 work for
both operands regardless of the real bitwidths — the inefficiency QGTC's
Figure 7c quantifies.  Effective rate and launch cost are calibrated from
the figure (see :mod:`repro.tc.hardware`).
"""

from __future__ import annotations

from ..errors import ShapeError
from ..tc.costmodel import TimeBreakdown, tflops, useful_flops
from ..tc.hardware import RTX3090, DeviceSpec

__all__ = ["cublas_int8_gemm_time", "cublas_int8_gemm_tflops"]


def cublas_int8_gemm_time(
    m: int, k: int, n: int, device: DeviceSpec = RTX3090
) -> TimeBreakdown:
    """Modeled time of an int8 TC GEMM ``m x k x n`` via cuBLAS.

    Roofline: int8 effective rate vs. byte traffic of int8 operands with
    int32 accumulation output, plus the library launch cost.
    """
    if min(m, k, n) < 1:
        raise ShapeError(f"GEMM dims must be positive, got {(m, k, n)}")
    flops = useful_flops(m, k, n)
    compute = flops / (device.int8_tc_effective_tflops * 1e12)
    stream = (m * k + k * n + 4 * m * n) / device.effective_dram_bw
    return TimeBreakdown(
        launch_s=device.library_launch_s,
        compute_s=compute,
        stream_s=stream,
        reload_s=0.0,
    )


def cublas_int8_gemm_tflops(
    m: int, k: int, n: int, device: DeviceSpec = RTX3090
) -> float:
    """Achieved TFLOP/s of the cuBLAS int8 path (Figure 7c's unit)."""
    t = cublas_int8_gemm_time(m, k, n, device)
    return tflops(useful_flops(m, k, n), t.total_s)
