"""Baseline execution models: DGL-like fp32 on CUDA cores, cuBLAS int8 TC,
and CUTLASS int4 TC (paper §6 comparisons)."""

from .cublas_like import cublas_int8_gemm_tflops, cublas_int8_gemm_time
from .cutlass_like import (
    CUTLASS_SETUP_S,
    cutlass_int4_gemm_tflops,
    cutlass_int4_gemm_time,
)
from .dgl_like import DGL_FRAMEWORK_OVERHEAD_S, DGLRunConfig, dgl_epoch_report

__all__ = [
    "CUTLASS_SETUP_S",
    "DGL_FRAMEWORK_OVERHEAD_S",
    "DGLRunConfig",
    "cublas_int8_gemm_tflops",
    "cublas_int8_gemm_time",
    "cutlass_int4_gemm_tflops",
    "cutlass_int4_gemm_time",
    "dgl_epoch_report",
]
