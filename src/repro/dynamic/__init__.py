"""Dynamic graphs as a first-class serving scenario.

The static pipeline packs an adjacency once, compiles a plan against its
zero-tile census, and replays both forever.  This package makes the
structure *mutable* without giving up any of that machinery:

* :class:`~repro.dynamic.mutable.MutableGraph` — in-place delta updates
  of the packed bit-planes and the §4.3 tile census (only dirty tiles
  re-balloted), identity tracked by a chained structure digest;
* :class:`~repro.dynamic.patch.PatchPolicy` — when a cached
  :class:`~repro.plan.ir.ExecutionPlan` may be key-patched onto the
  mutated operand versus recompiled (census drift, dirty-tile fraction,
  the codegen 48-pattern dense-fallback boundary);
* :class:`~repro.dynamic.session.DynamicSession` — serving integration:
  digest-keyed artifacts, eager invalidation of superseded cache entries
  (plans, adjacencies, compiled kernels), a serve-time stale guard, and
  mutation counters surfaced to the perf PAG.

Everything is pinned bit-for-bit against the fresh pack-from-scratch
oracle by the mutation differential harness in ``tests/dynamic``.
"""

from .mutable import MutableGraph, MutationDelta, MutationStats, dirty_tiles_for
from .patch import PatchDecision, PatchPolicy
from .session import DynamicSession, DynamicStats

__all__ = [
    "DynamicSession",
    "DynamicStats",
    "MutableGraph",
    "MutationDelta",
    "MutationStats",
    "PatchDecision",
    "PatchPolicy",
    "dirty_tiles_for",
]
