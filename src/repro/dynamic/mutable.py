"""Incrementally mutable adjacency: delta re-packing + delta tile census.

The paper's 8x128 tile structure (§4.3) localizes edits: flipping one
adjacency bit touches exactly one packed ``uint32`` word per direction and
dirties at most the two tiles containing the ``(u, v)`` / ``(v, u)``
positions.  :class:`MutableGraph` exploits that locality — it owns a live
copy of the packed 1-bit aggregation operand ``A + I`` (the exact operand
:func:`repro.gnn.quantized.pack_batch_adjacency` builds) and applies edge
insert/delete streams as in-place word updates, re-balloting *only* the
dirty tiles via :func:`repro.core.bitpack.recensus_tiles`.  A full
re-pack is O(n^2); a mutation batch is O(edits).

Identity is a **chained structure digest**: every effective mutation
extends ``digest_{t+1} = H(digest_t || op || u || v)``, so the digest
changes whenever — and only when — the structure changes, in O(edits)
instead of O(E).  Cache keys derived from the digest therefore miss the
moment the structure moves, which is what makes a stale compiled kernel
unreachable (see :mod:`repro.dynamic.session`).

Published artifacts are immutable: :meth:`MutableGraph.snapshot` hands out
*frozen copies* of the packed words, census and degrees, never views of
the live buffers — a reader replaying a snapshot can never observe a
concurrent mutation mid-flight.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.bitpack import TC_K, TC_M, PackedBits, pad_to, recensus_tiles
from ..core.bitops import WORD_BITS
from ..errors import ShapeError
from ..gnn.quantized import PackedAdjacency, pack_batch_adjacency
from ..graph.batching import Subgraph, SubgraphBatch
from ..graph.csr import CSRGraph
from ..tc.kernel import TileSkipPlan

__all__ = [
    "MutableGraph",
    "MutationDelta",
    "MutationStats",
    "dirty_tiles_for",
]


def dirty_tiles_for(u: int, v: int) -> frozenset[tuple[int, int]]:
    """The analytically-expected dirty tile set of one edge mutation.

    Flipping edge ``(u, v)`` flips adjacency bits ``(u, v)`` and
    ``(v, u)``; with 8-row x 128-column tiles those bits live in tiles
    ``(u // 8, v // 128)`` and ``(v // 8, u // 128)`` — one tile when the
    two coordinates land in the same tile.  The property tests assert
    :class:`MutableGraph` dirties exactly this set.
    """
    return frozenset({(u // TC_M, v // TC_K), (v // TC_M, u // TC_K)})


@dataclass(frozen=True)
class MutationDelta:
    """What one :meth:`MutableGraph.apply` batch actually changed."""

    #: Effective mutations in application order, as ``(op, u, v)`` with
    #: canonical ``u < v`` endpoints.  No-ops are excluded.
    applied: tuple[tuple[str, int, int], ...]
    #: Requested mutations that changed nothing (duplicate inserts,
    #: deletes of absent edges, self-loops).
    noops: int
    #: Tiles whose census was re-balloted by this batch.
    dirty_tiles: frozenset[tuple[int, int]]

    @property
    def mutated(self) -> bool:
        """True when the batch changed the structure (digest moved)."""
        return bool(self.applied)


@dataclass
class MutationStats:
    """Lifetime mutation counters of one :class:`MutableGraph`."""

    batches: int = 0
    edges_inserted: int = 0
    edges_deleted: int = 0
    noop_mutations: int = 0
    tiles_recensused: int = 0
    full_repacks: int = 0

    @property
    def mutations_applied(self) -> int:
        """Effective structural changes across all batches."""
        return self.edges_inserted + self.edges_deleted

    def as_metrics(self) -> dict[str, float]:
        """Flat numeric view for PAG / benchmark emission."""
        return {
            "batches": float(self.batches),
            "edges_inserted": float(self.edges_inserted),
            "edges_deleted": float(self.edges_deleted),
            "noop_mutations": float(self.noop_mutations),
            "mutations_applied": float(self.mutations_applied),
            "tiles_recensused": float(self.tiles_recensused),
            "full_repacks": float(self.full_repacks),
        }


class MutableGraph:
    """A mutable wrapper over the packed aggregation operand ``A + I``.

    Construct with :meth:`from_csr`; mutate with :meth:`insert_edge` /
    :meth:`delete_edge` / :meth:`apply`; publish with :meth:`snapshot`.
    The live packed planes, census and degrees are private — every
    published artifact is a frozen copy, and the class-level invariant is
    that the incremental state is *bit-for-bit* equal to a fresh
    :func:`~repro.gnn.quantized.pack_batch_adjacency` of the mutated edge
    set (the differential harness in ``tests/dynamic`` pins this after
    every mutation).
    """

    def __init__(self, graph: CSRGraph) -> None:
        """Seed the packed state from ``graph`` (see :meth:`from_csr`)."""
        self._features = graph.features
        self._labels = graph.labels
        self._name = graph.name
        self._num_classes = graph.num_classes
        self.num_nodes = graph.num_nodes
        if self.num_nodes <= 0:
            raise ShapeError("a mutable graph needs at least one node")
        # Canonical undirected edge set: (lo, hi) with lo < hi.  Deriving
        # it this way drops self-loops and direction duplicates, so a
        # graph that was not built by ``CSRGraph.from_edges`` is
        # canonicalized here before anything is packed or digested.
        lo = np.repeat(np.arange(self.num_nodes), graph.degrees())
        hi = graph.indices
        keep = lo < hi
        self._edges: set[tuple[int, int]] = {
            (int(a), int(b)) for a, b in zip(lo[keep], hi[keep])
        }
        self.version = 0
        self._csr_cache: tuple[int, CSRGraph] | None = None
        canonical = self.to_csr()
        # Seed packed planes / census / degrees through the exact serving
        # pack path, so state starts bit-identical by construction.
        adjacency = pack_batch_adjacency(
            SubgraphBatch(
                members=(
                    Subgraph(
                        graph=canonical,
                        original_nodes=np.arange(self.num_nodes),
                    ),
                )
            )
        )
        self._words = np.array(adjacency.packed.words)  # writable copy
        self._mask = np.array(adjacency.plan.masks[0])
        self._degrees = np.array(adjacency.degrees)
        self.stats = MutationStats()
        self.stats.full_repacks += 1  # the seeding pack
        h = hashlib.blake2b(digest_size=16)
        h.update(struct.pack("<q", self.num_nodes))
        h.update(canonical.indptr.tobytes())
        h.update(b"|")
        h.update(canonical.indices.tobytes())
        self._digest = h.digest()

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "MutableGraph":
        """Wrap a static :class:`~repro.graph.csr.CSRGraph`."""
        return cls(graph)

    # ------------------------------------------------------------------ #
    # Identity and shape
    # ------------------------------------------------------------------ #
    @property
    def structure_digest(self) -> str:
        """Chained content digest of the current structure (hex).

        Equal digests imply identical mutation history from the same
        seed, hence identical structure; any effective mutation changes
        it.  This is the digest dynamic cache keys are derived from.
        """
        return self._digest.hex()

    @property
    def features(self) -> np.ndarray | None:
        """Node features carried over from the wrapped graph (immutable)."""
        return self._features

    @property
    def num_edges(self) -> int:
        """Undirected edge count (self-loops excluded, as in CSRGraph)."""
        return len(self._edges)

    @property
    def tile_grid(self) -> tuple[int, int]:
        """``(row_tiles, k_tiles)`` of the packed operand's census."""
        return self._mask.shape

    @property
    def nonzero_fraction(self) -> float:
        """Live census: fraction of 8x128 tiles with at least one bit."""
        return float(self._mask.mean()) if self._mask.size else 0.0

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test on the canonical undirected edge set."""
        a, b = self._canonical(u, v)
        return a != b and (a, b) in self._edges

    def _canonical(self, u: int, v: int) -> tuple[int, int]:
        u, v = int(u), int(v)
        n = self.num_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise ShapeError(f"edge ({u}, {v}) outside [0, {n})")
        return (u, v) if u <= v else (v, u)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def insert_edge(self, u: int, v: int) -> MutationDelta:
        """Insert one undirected edge (duplicate / self-loop is a no-op)."""
        return self.apply([("insert", u, v)])

    def delete_edge(self, u: int, v: int) -> MutationDelta:
        """Delete one undirected edge (absent / self-loop is a no-op)."""
        return self.apply([("delete", u, v)])

    def apply(
        self, mutations: Iterable[tuple[str, int, int]]
    ) -> MutationDelta:
        """Apply an ordered mutation stream as one delta batch.

        Each mutation is ``(op, u, v)`` with ``op`` in
        ``{"insert", "delete"}``.  Effectiveness is judged against the
        *evolving* edge set, so an insert-then-delete of the same edge
        within one batch round-trips exactly.  Self-loops are no-ops (the
        operand's diagonal is the fixed ``+ I`` term), as are duplicate
        inserts and deletes of absent edges — mirroring
        :meth:`CSRGraph.from_edges` canonicalization, which keeps the
        incremental state bit-comparable to a fresh pack.

        Bit-plane words are updated in place; only the dirty tiles are
        re-balloted.  The structure digest advances once per batch over
        the effective mutations.
        """
        applied: list[tuple[str, int, int]] = []
        dirty: set[tuple[int, int]] = set()
        noops = 0
        words = self._words[0]
        degrees = self._degrees
        for op, u, v in mutations:
            a, b = self._canonical(u, v)
            if op not in ("insert", "delete"):
                raise ShapeError(f"unknown mutation op {op!r}")
            if a == b:
                noops += 1
                continue
            edge = (a, b)
            if op == "insert":
                if edge in self._edges:
                    noops += 1
                    continue
                self._edges.add(edge)
                set_bit = True
                degrees[a, 0] += 1.0
                degrees[b, 0] += 1.0
                self.stats.edges_inserted += 1
            else:
                if edge not in self._edges:
                    noops += 1
                    continue
                self._edges.remove(edge)
                set_bit = False
                degrees[a, 0] -= 1.0
                degrees[b, 0] -= 1.0
                self.stats.edges_deleted += 1
            for row, col in ((a, b), (b, a)):
                word = col // WORD_BITS
                bit = np.uint32(1) << np.uint32(col % WORD_BITS)
                if set_bit:
                    words[row, word] |= bit
                else:
                    words[row, word] &= ~bit
            dirty |= dirty_tiles_for(a, b)
            applied.append((op, a, b))
        if applied:
            recensused = recensus_tiles(words, self._mask, dirty)
            self.stats.tiles_recensused += recensused
            h = hashlib.blake2b(digest_size=16)
            h.update(self._digest)
            for op, a, b in applied:
                h.update(struct.pack("<Bqq", 1 if op == "insert" else 0, a, b))
            self._digest = h.digest()
            self.version += 1
            self._csr_cache = None
        self.stats.batches += 1
        self.stats.noop_mutations += noops
        return MutationDelta(
            applied=tuple(applied),
            noops=noops,
            dirty_tiles=frozenset(dirty if applied else ()),
        )

    # ------------------------------------------------------------------ #
    # Publication
    # ------------------------------------------------------------------ #
    def snapshot(self) -> PackedAdjacency:
        """A frozen :class:`~repro.gnn.quantized.PackedAdjacency` of the
        current structure.

        Every array is a read-only *copy* of the live state: later
        mutations never reach a published snapshot, and an attempt to
        write through one raises.  This is the incremental replacement
        for :func:`~repro.gnn.quantized.pack_batch_adjacency` — O(copy)
        instead of O(n^2) densify+pack — and bit-identical to it.
        """
        words = self._words.copy()
        mask = self._mask.copy()
        degrees = self._degrees.copy()
        for arr in (words, mask, degrees):
            arr.setflags(write=False)
        packed = PackedBits(
            words=words,
            bits=1,
            layout="col",
            logical_vectors=self.num_nodes,
            logical_k=self.num_nodes,
            pad_vectors=TC_M,
        )
        return PackedAdjacency(
            packed=packed, plan=TileSkipPlan(masks=(mask,)), degrees=degrees
        )

    def census_mask(self) -> np.ndarray:
        """A read-only copy of the live zero-tile census."""
        mask = self._mask.copy()
        mask.setflags(write=False)
        return mask

    def to_csr(self) -> CSRGraph:
        """Rebuild the current structure as a static CSR (cached per
        version) — the fresh-pack oracle's input, O(E)."""
        if self._csr_cache is not None and self._csr_cache[0] == self.version:
            return self._csr_cache[1]
        if self._edges:
            edges = np.array(sorted(self._edges), dtype=np.int64)
        else:
            edges = np.zeros((0, 2), dtype=np.int64)
        graph = CSRGraph.from_edges(
            self.num_nodes,
            edges,
            features=self._features,
            labels=self._labels,
            name=self._name,
            num_classes=self._num_classes,
        )
        self._csr_cache = (self.version, graph)
        return graph

    def to_batch(self) -> SubgraphBatch:
        """The current structure as a one-member batch (oracle input)."""
        return SubgraphBatch(
            members=(
                Subgraph(
                    graph=self.to_csr(),
                    original_nodes=np.arange(self.num_nodes),
                ),
            )
        )

    def expected_words_shape(self) -> tuple[int, int, int]:
        """Shape of the packed plane array (for tests and docs)."""
        n = self.num_nodes
        return (1, pad_to(max(n, 1), TC_M), pad_to(max(n, 1), TC_K) // WORD_BITS)
