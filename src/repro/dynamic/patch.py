"""Patch-vs-recompile policy for plans serving a mutating graph.

A shape-preserving mutation leaves every GEMM spec of a compiled
:class:`~repro.plan.ir.ExecutionPlan` intact — only the *content keys* of
the adjacency artifact move (the structure digest changed).  For such
mutations the plan is **patched**: its aggregate ``pack_a``/``census``
nodes are retargeted at the new artifact key
(:meth:`ExecutionPlan.retarget_adjacency`) and everything else is reused
by reference, skipping compilation entirely.

Patching is only sound while the compile-time assumptions still hold, so
the policy falls back to a full recompile when the census has drifted far
enough to invalidate them:

* **dirty-tile fraction** — the cumulative fraction of tiles re-balloted
  since the last compile exceeds ``max_dirty_fraction`` (the frozen
  backend choice was priced against a census that no longer describes
  the operand);
* **census drift** — the non-zero tile fraction moved more than
  ``max_census_drift`` from its compile-time value (same reason, in
  aggregate rather than per-tile form);
* **pattern boundary** — the number of distinct live tile-row census
  patterns crosses the codegen backend's
  :data:`~repro.codegen.lower.GROUP_UNROLL_LIMIT` in either direction
  (the skip-loop specialization would switch between the grouped and
  dense schedules, so a compiled codegen kernel's structure assumption
  flips).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen.lower import GROUP_UNROLL_LIMIT, census_pattern_count

__all__ = ["PatchDecision", "PatchPolicy"]


@dataclass(frozen=True)
class PatchDecision:
    """One patch-vs-recompile verdict, with the numbers that drove it."""

    action: str  # "patch" | "recompile"
    reason: str
    dirty_fraction: float
    census_drift: float
    patterns_before: int
    patterns_after: int

    @property
    def patch(self) -> bool:
        """Whether the verdict allows key-patching the compiled plan."""
        return self.action == "patch"


@dataclass(frozen=True)
class PatchPolicy:
    """Thresholds of the patch-vs-recompile decision (see module doc)."""

    #: Cumulative re-balloted tile fraction (since last compile) above
    #: which the compile-time census is considered stale.
    max_dirty_fraction: float = 0.05
    #: Absolute non-zero-fraction drift (since last compile) above which
    #: the frozen dispatch pricing is considered stale.
    max_census_drift: float = 0.02
    #: The codegen dense-fallback boundary; crossing it in either
    #: direction forces a recompile.
    pattern_limit: int = GROUP_UNROLL_LIMIT

    def decide(
        self,
        *,
        dirty_tiles: int,
        total_tiles: int,
        fraction_at_compile: float,
        fraction_now: float,
        mask_at_compile: np.ndarray | None = None,
        mask_now: np.ndarray | None = None,
    ) -> PatchDecision:
        """Judge whether a compiled plan may be key-patched.

        ``dirty_tiles`` counts distinct tiles re-censused since the plan
        was last compiled; ``fraction_*`` are the census non-zero
        fractions then and now.  The masks are optional — when either is
        missing the pattern-boundary test is skipped (the other two
        tests still apply).
        """
        dirty_fraction = dirty_tiles / total_tiles if total_tiles else 0.0
        drift = abs(fraction_now - fraction_at_compile)
        before = after = -1
        if mask_at_compile is not None and mask_now is not None:
            before = census_pattern_count(mask_at_compile)
            after = census_pattern_count(mask_now)
        if dirty_fraction > self.max_dirty_fraction:
            action, reason = "recompile", (
                f"dirty-tile fraction {dirty_fraction:.4f} > "
                f"{self.max_dirty_fraction}"
            )
        elif drift > self.max_census_drift:
            action, reason = "recompile", (
                f"census drift {drift:.4f} > {self.max_census_drift}"
            )
        elif before >= 0 and (
            (before <= self.pattern_limit) != (after <= self.pattern_limit)
        ):
            action, reason = "recompile", (
                f"census patterns crossed the {self.pattern_limit}-pattern "
                f"dense-fallback boundary ({before} -> {after})"
            )
        else:
            action, reason = "patch", "shape-preserving mutation within thresholds"
        return PatchDecision(
            action=action,
            reason=reason,
            dirty_fraction=dirty_fraction,
            census_drift=drift,
            patterns_before=before,
            patterns_after=after,
        )
