"""Dynamic-graph serving: mutate, patch-or-recompile, never serve stale.

:class:`DynamicSession` pairs a :class:`~repro.dynamic.mutable.MutableGraph`
with an :class:`~repro.serving.engine.InferenceEngine` and keeps the
engine's content-keyed artifact caches coherent across mutations:

* every dynamic artifact is keyed by the graph's **chained structure
  digest** — ``("adjacency", "dynamic", digest)`` for the packed operand,
  ``("plan", "dynamic", digest)`` for the compiled plan — so a mutation
  changes every key and a stale entry can never be *hit* again;
* on mutation the packed operand is **delta-published** (a frozen
  snapshot of the incrementally-updated planes, no O(n^2) re-pack) and
  the cached plan is **patched**
  (:meth:`~repro.plan.ir.ExecutionPlan.retarget_adjacency`) when the
  :class:`~repro.dynamic.patch.PatchPolicy` allows, recompiled when the
  census drifted past its thresholds;
* superseded entries — including codegen ``kernel``-segment entries
  compiled against the pre-mutation census — are eagerly **discarded**
  (counted as cache invalidations), and :meth:`serve` re-checks the
  served operand's census digest against the live structure so a stale
  compiled kernel is caught and counted (``stale_kernel_hits``; the
  benchmark asserts zero) even if a caller bypasses the bookkeeping.

Serving replays :func:`~repro.gnn.quantized.execute_forward_plan` with
the snapshot passed explicitly, so logits are bit-identical to a fresh
pack-from-scratch forward of the mutated structure (the differential
harness pins this at every mutation rate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..codegen import gemm_kernel_key, prepare_plan_kernels
from ..codegen.backend import census_digest
from ..errors import ConfigError
from ..gnn.quantized import (
    PackedAdjacency,
    QuantizedForwardResult,
    execute_forward_plan,
)
from ..graph.csr import CSRGraph
from ..plan.ir import ExecutionPlan, compile_forward_plan
from ..serving.engine import InferenceEngine, ServingConfig, StalePlan
from .mutable import MutableGraph, MutationDelta
from .patch import PatchDecision, PatchPolicy

__all__ = ["DynamicSession", "DynamicStats"]

_DYNAMIC_TAG = "dynamic"


@dataclass
class DynamicStats:
    """Running totals of one dynamic serving session."""

    #: Mutation batches that changed the structure (digest advanced).
    mutation_batches: int = 0
    #: Forward passes served from the incremental state.
    serves: int = 0
    #: Plans reused via key patching (no compilation).
    plans_patched: int = 0
    #: Plans recompiled because the policy refused to patch (or none
    #: existed yet).
    plans_recompiled: int = 0
    #: Superseded dynamic plan entries discarded from the plan segment.
    plans_invalidated: int = 0
    #: Superseded packed-adjacency entries discarded.
    adjacency_invalidated: int = 0
    #: Codegen kernels (keyed by the pre-mutation census digest) discarded.
    kernels_invalidated: int = 0
    #: Mutation batches absorbed without an O(n^2) re-pack.
    repacks_avoided: int = 0
    #: Times a served plan/operand pair failed the live-structure check.
    #: The invariant this class exists to enforce is that this stays 0.
    stale_kernel_hits: int = 0
    #: Seconds inside :meth:`DynamicSession.serve` measured windows.
    serve_seconds: float = 0.0

    def as_metrics(self) -> dict[str, float]:
        """Flat numeric view for the PAG's dynamic node."""
        return {
            "mutation_batches": float(self.mutation_batches),
            "serves": float(self.serves),
            "plans_patched": float(self.plans_patched),
            "plans_recompiled": float(self.plans_recompiled),
            "plans_invalidated": float(self.plans_invalidated),
            "adjacency_invalidated": float(self.adjacency_invalidated),
            "kernels_invalidated": float(self.kernels_invalidated),
            "repacks_avoided": float(self.repacks_avoided),
            "stale_kernel_hits": float(self.stale_kernel_hits),
        }


class DynamicSession:
    """Serve a mutating graph through patched/recompiled cached plans."""

    def __init__(
        self,
        model,
        graph: "MutableGraph | CSRGraph",
        config: ServingConfig | None = None,
        *,
        policy: PatchPolicy | None = None,
        calibration=None,
        engine: InferenceEngine | None = None,
    ) -> None:
        """Wrap ``graph`` (a :class:`MutableGraph`, or a CSR to wrap) and
        serve it through ``engine`` (a fresh one by default).  The graph
        must carry node features — the forward pass reads them."""
        if isinstance(graph, CSRGraph):
            graph = MutableGraph.from_csr(graph)
        self.mutable = graph
        if self.mutable.features is None:
            raise ConfigError(
                "dynamic serving needs node features on the wrapped graph"
            )
        self.engine = (
            engine
            if engine is not None
            else InferenceEngine(model, config, calibration=calibration)
        )
        self.policy = policy if policy is not None else PatchPolicy()
        self.stats = DynamicStats()
        self.last_decision: PatchDecision | None = None
        # The executor only reads features()/num_nodes from the batch when
        # the packed adjacency is passed explicitly; both are mutation
        # invariant, so one template batch serves every structure version.
        self._feature_batch = self.mutable.to_batch()
        # Compile-time census state the patch policy judges drift against.
        self._dirty_since_compile: set[tuple[int, int]] = set()
        self._fraction_at_compile: float | None = None
        self._mask_at_compile: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Content keys
    # ------------------------------------------------------------------ #
    def adjacency_key(self) -> tuple:
        """Current packed-operand key: moves with every mutation."""
        return ("adjacency", _DYNAMIC_TAG, self.mutable.structure_digest)

    def plan_key(self) -> tuple:
        """Current compiled-plan key: moves with every mutation."""
        return ("plan", _DYNAMIC_TAG, self.mutable.structure_digest)

    @staticmethod
    def _is_dynamic_key(key: object) -> bool:
        return (
            isinstance(key, tuple)
            and len(key) == 3
            and key[1] == _DYNAMIC_TAG
        )

    # ------------------------------------------------------------------ #
    # Mutation intake
    # ------------------------------------------------------------------ #
    def mutate(
        self,
        mutations,
        *,
        invalidate: bool = True,
    ) -> MutationDelta:
        """Apply a mutation batch and bring the caches up to date.

        Delta-updates the packed planes and census, publishes a frozen
        snapshot under the new structure digest, then patches the cached
        plan (policy permitting) or recompiles it.  With ``invalidate``
        (the default) every superseded dynamic cache entry — adjacency,
        plan, and the codegen kernels of the pre-mutation census — is
        discarded immediately; pass ``invalidate=False`` to leave them
        resident (they can no longer be *hit*, their keys embed a dead
        digest) and inspect them via :meth:`stale_plans`.
        """
        cache = self.engine.plan_artifacts
        old_plan_key = self.plan_key()
        delta = self.mutable.apply(mutations)
        if not delta.mutated:
            return delta
        self.stats.mutation_batches += 1
        self._dirty_since_compile |= delta.dirty_tiles
        adjacency = self.mutable.snapshot()
        cache.put(self.adjacency_key(), adjacency)
        self.stats.repacks_avoided += 1
        old_plan = cache.segment("plan").peek(old_plan_key)
        mask_now = adjacency.plan.masks[0]
        fraction_at_compile = (
            self._fraction_at_compile
            if self._fraction_at_compile is not None
            else adjacency.nonzero_fraction
        )
        decision = self.policy.decide(
            dirty_tiles=len(self._dirty_since_compile),
            total_tiles=int(mask_now.size),
            fraction_at_compile=fraction_at_compile,
            fraction_now=adjacency.nonzero_fraction,
            mask_at_compile=self._mask_at_compile,
            mask_now=mask_now,
        )
        self.last_decision = decision
        if decision.patch and old_plan is not None:
            patched = old_plan.retarget_adjacency(self.adjacency_key())
            cache.put(self.plan_key(), patched)
            self.stats.plans_patched += 1
            dispatcher = self.engine.dispatcher
            if dispatcher is not None:
                # Keep the pricer's census observation current even when
                # no compilation consults it right now.
                dispatcher.observe_tile_fraction(
                    adjacency.nonzero_fraction, nodes=self.mutable.num_nodes
                )
        else:
            plan = self._compile(adjacency)
            cache.put(self.plan_key(), plan)
            self.stats.plans_recompiled += 1
        if invalidate:
            self.invalidate_mutated()
        return delta

    def _compile(self, adjacency: PackedAdjacency) -> ExecutionPlan:
        """Full recompile against the current census (resets drift state)."""
        engine = self.engine
        dispatcher = engine.dispatcher
        if dispatcher is not None:
            dispatcher.observe_tile_fraction(
                adjacency.nonzero_fraction, nodes=self.mutable.num_nodes
            )
        plan = compile_forward_plan(
            engine.model,
            num_nodes=self.mutable.num_nodes,
            feature_bits=engine.config.feature_bits,
            weight_bits=engine.config.effective_weight_bits,
            engine=engine.engine_selector,
            weight_key=engine.weight_key,
            adjacency_key=self.adjacency_key(),
        )
        self._dirty_since_compile.clear()
        self._fraction_at_compile = adjacency.nonzero_fraction
        self._mask_at_compile = adjacency.plan.masks[0]
        return plan

    # ------------------------------------------------------------------ #
    # Invalidation
    # ------------------------------------------------------------------ #
    def invalidate_mutated(self) -> dict[str, int]:
        """Discard every dynamic cache entry keyed by a dead digest.

        Retires superseded adjacency and plan entries from the engine's
        :class:`~repro.plan.cache.PlanCache` (counted in each segment's
        ``invalidations``) and, for every retired adjacency, the codegen
        ``kernel``-segment entries compiled against its census — the keys
        are reconstructed via
        :func:`~repro.codegen.backend.gemm_kernel_key`, so stale kernels
        are removed without recompiling anything.  Idempotent; returns
        the per-kind discard counts.
        """
        cache = self.engine.plan_artifacts
        current = self.mutable.structure_digest
        counts = {"adjacency": 0, "plan": 0, "kernel": 0}
        kernel_segment = cache.segment("kernel")
        plan_now = cache.segment("plan").peek(self.plan_key())
        adjacency_segment = cache.segment("adjacency")
        for key in list(adjacency_segment.keys()):
            if not self._is_dynamic_key(key) or key[2] == current:
                continue
            stale = adjacency_segment.peek(key)
            if stale is not None and plan_now is not None:
                for step in plan_now.gemm_steps():
                    spec = step.spec
                    if spec.role != "aggregate" or spec.bits_a != 1:
                        continue
                    kernel_key = gemm_kernel_key(
                        m=spec.m,
                        n=spec.n,
                        bits_a=spec.bits_a,
                        bits_b=spec.bits_b,
                        a_padded_vectors=stale.packed.padded_vectors,
                        a_k_words=stale.packed.k_words,
                        tile_mask=stale.plan.masks[0],
                    )
                    if kernel_segment.discard(kernel_key):
                        counts["kernel"] += 1
            if adjacency_segment.discard(key):
                counts["adjacency"] += 1
        plan_segment = cache.segment("plan")
        for key in list(plan_segment.keys()):
            if self._is_dynamic_key(key) and key[2] != current:
                if plan_segment.discard(key):
                    counts["plan"] += 1
        self.stats.adjacency_invalidated += counts["adjacency"]
        self.stats.plans_invalidated += counts["plan"]
        self.stats.kernels_invalidated += counts["kernel"]
        return counts

    def stale_plans(self) -> list[StalePlan]:
        """Dynamic plans compiled against a pre-mutation census.

        Scans the engine's plan segment (read-only, via ``peek``) for
        plans whose aggregate steps reference a dynamic adjacency key
        other than the current structure digest — i.e. plans that froze
        a census the mutations have since rewritten.  With the default
        ``mutate(..., invalidate=True)`` flow this is empty; it reports
        leftovers when invalidation was deferred.
        """
        expected = self.adjacency_key()
        stale: list[StalePlan] = []
        segment = self.engine.plan_cache
        for key in segment.keys():
            plan = segment.peek(key)
            if plan is None or not isinstance(plan, ExecutionPlan):
                continue
            for a_key in plan.adjacency_keys():
                if self._is_dynamic_key(a_key) and a_key != expected:
                    stale.append(
                        StalePlan(
                            key=key,
                            divergences=(
                                (
                                    "census",
                                    str(a_key[2])[:12],
                                    str(expected[2])[:12],
                                ),
                            ),
                        )
                    )
                    break
        return stale

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(self) -> QuantizedForwardResult:
        """One forward pass over the current structure.

        Resolves the operand and plan by the live structure digest
        (seeding frozen snapshots / compiling on miss), verifies the pair
        actually describes the live structure (a mismatch is a
        ``stale_kernel_hits`` event and forces a rebuild — it cannot
        serve), and replays the plan.  Logits are bit-identical to a
        fresh pack-from-scratch forward of the same structure.
        """
        engine = self.engine
        cache = engine.plan_artifacts
        weights = engine.packed_weights()
        start = time.perf_counter()
        adjacency = cache.get_or_build(self.adjacency_key(), self.mutable.snapshot)
        plan = cache.segment("plan").get(self.plan_key())
        if plan is None:
            plan = self._compile(adjacency)
            cache.put(self.plan_key(), plan)
            self.stats.plans_recompiled += 1
        adjacency, plan = self._check_live(adjacency, plan, cache)
        lower_s, compile_s = prepare_plan_kernels(plan, adjacency)
        forward = execute_forward_plan(
            plan,
            engine.model,
            self._feature_batch,
            packed_weights=weights,
            packed_adjacency=adjacency,
            artifacts=cache,
            calibration=engine.calibration,
            kernel_config=engine.config.kernel,
            apply_softmax=engine.config.apply_softmax,
        )
        elapsed = time.perf_counter() - start
        self.stats.serves += 1
        self.stats.serve_seconds += elapsed
        # Feed the engine's own accounting so PAG coverage stays coherent:
        # dynamic serves are worker wall-clock like any other round.
        stats = engine.stats
        stats.wall_s += elapsed
        stats.recent_round_seconds.append(elapsed)
        stats.batches += 1
        stats.nodes += self.mutable.num_nodes
        stats.phase_seconds["plan_lower"] = (
            stats.phase_seconds.get("plan_lower", 0.0) + lower_s
        )
        stats.phase_seconds["kernel_compile"] = (
            stats.phase_seconds.get("kernel_compile", 0.0) + compile_s
        )
        for timing in forward.phases:
            stats.phase_seconds[timing.phase] = (
                stats.phase_seconds.get(timing.phase, 0.0) + timing.seconds
            )
        dispatcher = engine.dispatcher
        if dispatcher is not None and engine.config.record_timings:
            fraction = adjacency.nonzero_fraction
            for timing in forward.timings:
                dispatcher.record_timing(
                    timing.spec,
                    timing.backend,
                    timing.seconds,
                    tile_fraction=(
                        fraction if timing.spec.role == "aggregate" else None
                    ),
                )
            stats.autotune_samples += len(forward.timings)
        return forward

    def _check_live(
        self,
        adjacency: PackedAdjacency,
        plan: ExecutionPlan,
        cache,
    ) -> tuple[PackedAdjacency, ExecutionPlan]:
        """The serve-time stale guard (see :attr:`DynamicStats.stale_kernel_hits`).

        A plan or operand that does not describe the live structure —
        wrong adjacency key, or a census digest that disagrees with the
        live census — would replay a kernel compiled for a different
        graph.  The digest keying makes this unreachable through the
        normal flow; this check makes it *detectable* if anything
        bypasses the keying, and rebuilds before serving.
        """
        expected_key = self.adjacency_key()
        live_digest = census_digest(self.mutable.census_mask())
        ok = all(key == expected_key for key in plan.adjacency_keys())
        ok = ok and census_digest(adjacency.plan.masks[0]) == live_digest
        ok = ok and adjacency.num_nodes == self.mutable.num_nodes
        if ok:
            return adjacency, plan
        self.stats.stale_kernel_hits += 1
        adjacency = self.mutable.snapshot()
        cache.put(expected_key, adjacency)
        plan = self._compile(adjacency)
        cache.put(self.plan_key(), plan)
        self.stats.plans_recompiled += 1
        return adjacency, plan

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def dynamic_metrics(self) -> dict[str, float]:
        """Session + graph mutation counters, flat (PAG dynamic node)."""
        metrics = self.stats.as_metrics()
        for name, value in self.mutable.stats.as_metrics().items():
            metrics[f"graph.{name}"] = value
        metrics["nonzero_fraction"] = self.mutable.nonzero_fraction
        metrics["num_edges"] = float(self.mutable.num_edges)
        return metrics
