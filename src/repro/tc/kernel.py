"""The QGTC batched bit-GEMM kernel emulator (paper §4).

Combines the pieces of §4 into one kernel:

* operands arrive 3D-stacked bit-compressed (§4.2),
* all-zero ``8 x 128`` tiles of the left operand are jumped (§4.3),
* non-zero tiles are either re-loaded per bit plane (*cross-bit reduction*)
  or loaded once and used for every bit plane (*cross-tile reduction*,
  the non-zero tile reuse of §4.4).

Two execution paths produce **identical** results and counters:

* :meth:`BitGemmKernel.run_tile_loop` — a literal WMMA fragment loop.  This
  is the executable specification: every fragment load, ballot check and
  bmma is performed one tile at a time.  O(python) per tile, so tests use
  small shapes.
* :meth:`BitGemmKernel.run` — the fast path.  The functional result comes
  from the vectorized packed/BLAS engine (zero tiles contribute nothing, so
  skipping them never changes the product), and the counters are derived in
  closed form from the *measured* per-plane zero-tile masks.  The test
  suite asserts tile-loop and fast-path equality on both outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..core.bitgemm import Engine, bitgemm
from ..core.bitpack import PackedBits, tile_nonzero_mask
from ..errors import PackingError, ShapeError
from .counters import KernelCounters
from .fragments import make_fragment
from .wmma import TILE_ACCUM_BYTES, TILE_OPERAND_BYTES, bmma_sync, load_matrix_sync, store_matrix_sync

__all__ = [
    "ReuseMode",
    "KernelConfig",
    "BitGemmKernel",
    "KernelResult",
    "TileSkipPlan",
    "TileSummary",
    "derive_tile_counters",
    "plan_tile_skip",
    "zero_tile_summary",
]

ReuseMode = Literal["cross-bit", "cross-tile"]


@dataclass(frozen=True)
class TileSummary:
    """Tile census of an adjacency plane — the quantity Figure 8 plots."""

    total_tiles: int
    nonzero_tiles: int

    @property
    def zero_tiles(self) -> int:
        return self.total_tiles - self.nonzero_tiles

    @property
    def processed_ratio(self) -> float:
        """Fraction of tiles a jumping kernel still processes (Figure 8 bar)."""
        if self.total_tiles == 0:
            return 0.0
        return self.nonzero_tiles / self.total_tiles


def zero_tile_summary(
    plane_words: np.ndarray, *, counters: KernelCounters | None = None
) -> TileSummary:
    """Census the tiles of a packed plane, optionally charging counters.

    The zero-tile check itself reads every word once; its traffic is charged
    to ``counters.global_bytes_read`` because the jump test is not free —
    the paper's §6.3 win is that a 128-byte read replaces a full
    load-fragment + bmma pipeline.
    """
    mask = tile_nonzero_mask(plane_words)
    summary = TileSummary(total_tiles=mask.size, nonzero_tiles=int(mask.sum()))
    if counters is not None:
        counters.tiles_total += summary.total_tiles
        counters.tiles_skipped += summary.zero_tiles
        counters.global_bytes_read += plane_words.nbytes
    return summary


@dataclass(frozen=True)
class TileSkipPlan:
    """Per-plane non-zero tile censuses of a packed left operand (§4.3).

    The single source of truth for which ``8 x 128`` tiles a zero-tile
    jumping execution touches: the kernel emulator derives its skipped-tile
    counters from it, the ``sparse`` host engine executes exactly the tiles
    it marks, and a serving session caches it per batch so the ballot is
    taken once per adjacency rather than once per request.
    """

    #: One ``(mt, kt)`` boolean mask per bit plane of the left operand.
    masks: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        if not self.masks:
            raise ShapeError("a tile-skip plan needs at least one plane mask")
        first = self.masks[0].shape
        for mask in self.masks:
            if mask.ndim != 2 or mask.shape != first:
                raise ShapeError("plane masks must share one 2-D tile grid")
        # Census masks are shared by reference across cached plans, codegen
        # kernel keys, and serving sessions: freeze them so an in-place
        # mutation (e.g. a dynamic-graph delta census) cannot silently
        # invalidate a published plan.  Writable inputs are copied first so
        # the caller's array stays writable.
        frozen = []
        for mask in self.masks:
            if mask.flags.writeable:
                mask = mask.copy()
                mask.setflags(write=False)
            frozen.append(mask)
        object.__setattr__(self, "masks", tuple(frozen))

    @property
    def bits(self) -> int:
        return len(self.masks)

    @property
    def tile_grid(self) -> tuple[int, int]:
        """``(mt, kt)`` tile counts of each plane."""
        return self.masks[0].shape

    @property
    def total_tiles(self) -> int:
        """Tiles across all planes — what a non-jumping kernel processes."""
        return self.masks[0].size * self.bits

    @property
    def nonzero_tiles(self) -> int:
        """Tiles that survive the ballot and must be computed."""
        return sum(int(mask.sum()) for mask in self.masks)

    @property
    def nonzero_fraction(self) -> float:
        """Fraction of tiles a jumping execution still processes."""
        if self.total_tiles == 0:
            return 0.0
        return self.nonzero_tiles / self.total_tiles

    def processed_per_plane(self) -> list[int]:
        """Surviving tile count of each plane (feeds the counter closed forms)."""
        return [int(mask.sum()) for mask in self.masks]

    def summary(self) -> TileSummary:
        """The census as a :class:`TileSummary` (Figure 8's metric).

        This is the bridge from an executed plan's adjacency artifact to
        the runtime's modeled reports: a batch whose ``PackedAdjacency``
        already carries its ballot needs no separate
        :class:`~repro.runtime.profilebatch.BatchProfile` census.
        """
        return TileSummary(
            total_tiles=self.total_tiles, nonzero_tiles=self.nonzero_tiles
        )

    def matches(self, operand: PackedBits) -> bool:
        """Whether this plan describes ``operand``'s plane/tile geometry."""
        return self.bits == operand.bits and self.tile_grid == (
            operand.padded_vectors // 8,
            operand.k_words // 4,
        )


def plan_tile_skip(operand: PackedBits) -> TileSkipPlan:
    """Census every plane of a packed left operand into a reusable plan."""
    return TileSkipPlan(
        masks=tuple(
            tile_nonzero_mask(operand.plane(i)) for i in range(operand.bits)
        )
    )


@dataclass(frozen=True)
class KernelConfig:
    """Optimization switches of the emulated kernel.

    Attributes
    ----------
    zero_tile_jumping:
        Skip all-zero left-operand tiles (§4.3).  Only engages when the
        left operand is 1-bit (the adjacency matrix); multi-bit left
        operands (the node-update GEMM) are dense by construction.
    reuse:
        ``"cross-tile"`` enables non-zero tile reuse (§4.4): each surviving
        A tile is loaded once and consumed by every B bit plane.
        ``"cross-bit"`` is the naive schedule that re-walks A per plane.
    """

    zero_tile_jumping: bool = True
    reuse: ReuseMode = "cross-tile"

    def __post_init__(self) -> None:
        if self.reuse not in ("cross-bit", "cross-tile"):
            raise ShapeError(f"unknown reuse mode {self.reuse!r}")


@dataclass(frozen=True)
class KernelResult:
    """Output of one emulated kernel launch."""

    #: Exact int64 product on the logical (unpadded) shape ``(M, N)``.
    output: np.ndarray
    #: Measured event counts for the launch.
    counters: KernelCounters


def derive_tile_counters(
    *,
    mt: int,
    kt: int,
    nt: int,
    bits_a: int,
    bits_b: int,
    processed_per_plane: list[int],
    jumping: bool,
    config: KernelConfig,
) -> KernelCounters:
    """Closed-form event counts for one kernel launch.

    Shared by the fast execution path (which feeds *measured* per-plane
    non-zero tile counts) and by the analytic benchmarks of Figures 7c/9 and
    Table 3 (which feed synthetic densities).  ``processed_per_plane[i]`` is
    the number of left-operand tiles of plane ``i`` that survive the
    zero-tile check (equal to ``mt * kt`` when jumping is off or the
    operand is dense).

    Accounting rules (validated tile-by-tile by
    :meth:`BitGemmKernel.run_tile_loop` in the test-suite):

    * one bmma per surviving A tile x B bit plane x output column tile;
    * cross-bit reloads each surviving A tile once per B plane, cross-tile
      loads it once (§4.4's O(n) -> O(1) claim);
    * B tiles are staged through shared memory once per (k-tile, n-tile,
      plane pair) under either schedule;
    * the zero-tile ballot's wasted traffic is one 128-byte read per
      *zero* tile visit — a surviving tile's read is charged to its
      fragment load;
    * cross-tile keeps C in registers and stores each output tile once;
      cross-bit completes the output per bit level (Figure 6a), paying a
      read-modify-write of every C tile on each subsequent pass.
    """
    if len(processed_per_plane) != bits_a:
        raise ShapeError(
            f"processed_per_plane must have {bits_a} entries, "
            f"got {len(processed_per_plane)}"
        )
    total_mk = mt * kt
    for count in processed_per_plane:
        if not 0 <= count <= total_mk:
            raise ShapeError(
                f"processed tile count {count} outside [0, {total_mk}]"
            )
    cross_tile = config.reuse == "cross-tile"
    processed = sum(processed_per_plane)

    c = KernelCounters(schedule=config.reuse, launches=1)
    c.tiles_total = total_mk * bits_a
    c.tiles_processed = processed
    c.tiles_skipped = c.tiles_total - processed
    c.mma_ops = processed * bits_b * nt
    c.frag_loads_a = processed * (1 if cross_tile else bits_b)
    c.frag_loads_b = kt * nt * bits_a * bits_b

    zero_visits = (c.tiles_total - processed) * (1 if cross_tile else bits_b)
    check_bytes = zero_visits * TILE_OPERAND_BYTES if jumping else 0

    out_tiles = mt * nt
    if cross_tile:
        c.frag_stores = out_tiles
        c_bytes_written = out_tiles * TILE_ACCUM_BYTES
        c_bytes_read = 0
    else:
        passes = bits_a * bits_b
        c.frag_stores = out_tiles * passes
        c_bytes_written = out_tiles * passes * TILE_ACCUM_BYTES
        c_bytes_read = out_tiles * max(passes - 1, 0) * TILE_ACCUM_BYTES

    c.global_bytes_read = (
        c.frag_loads_a * TILE_OPERAND_BYTES
        + c.frag_loads_b * TILE_OPERAND_BYTES
        + check_bytes
        + c_bytes_read
    )
    c.global_bytes_written = c_bytes_written
    c.tags = {
        "tiles_mk": total_mk,
        "bits": (bits_a, bits_b),
        "jumping": jumping,
    }
    return c


def _check_operands(a: PackedBits, b: PackedBits) -> None:
    if a.layout != "col":
        raise PackingError("left operand must be column-wise compressed")
    if b.layout != "row":
        raise PackingError("right operand must be row-wise compressed")
    if a.logical_k != b.logical_k:
        raise ShapeError(
            f"reduction dims differ: K_A={a.logical_k} vs K_B={b.logical_k}"
        )


class BitGemmKernel:
    """Emulated QGTC GEMM kernel; see module docstring."""

    def __init__(self, config: KernelConfig | None = None):
        self.config = config or KernelConfig()

    # ------------------------------------------------------------------ #
    # Fast path
    # ------------------------------------------------------------------ #
    def run(
        self,
        a: PackedBits,
        b: PackedBits,
        *,
        engine: Engine = "auto",
        plan: TileSkipPlan | None = None,
        registry=None,
    ) -> KernelResult:
        """Execute the kernel: vectorized math + closed-form counters.

        The closed forms are derived from the actual zero-tile masks of the
        packed operand, so sparsity effects are measured, not assumed.
        ``plan`` optionally supplies a precomputed census of ``a`` (e.g.
        from a serving session's tile-mask cache); it feeds both the
        counters and the ``sparse`` host engine, so a cached plan is balloted
        exactly once per operand instead of once per launch.  ``registry``
        resolves ``engine`` against a non-default
        :class:`~repro.plan.registry.BackendRegistry`.
        """
        _check_operands(a, b)
        if plan is not None and not plan.matches(a):
            raise ShapeError(
                f"tile-skip plan for grid {plan.tile_grid} x {plan.bits} planes "
                f"does not describe the left operand "
                f"({a.padded_vectors // 8}, {a.k_words // 4}) x {a.bits}"
            )
        if plan is None and (self.config.zero_tile_jumping and a.bits == 1):
            plan = plan_tile_skip(a)
        counters = self._derive_counters(a, b, plan)
        output = bitgemm(
            a,
            b,
            engine=engine,
            tile_masks=plan.masks if plan is not None else None,
            registry=registry,
        )
        return KernelResult(output=output, counters=counters)

    def _derive_counters(
        self, a: PackedBits, b: PackedBits, plan: TileSkipPlan | None = None
    ) -> KernelCounters:
        mt = a.padded_vectors // 8
        kt = a.k_words // 4
        nt = b.padded_vectors // 8
        jumping = self.config.zero_tile_jumping and a.bits == 1
        total_mk = mt * kt
        if jumping:
            if plan is None:
                plan = plan_tile_skip(a)
            processed_per_plane = plan.processed_per_plane()
        else:
            processed_per_plane = [total_mk] * a.bits
        counters = derive_tile_counters(
            mt=mt,
            kt=kt,
            nt=nt,
            bits_a=a.bits,
            bits_b=b.bits,
            processed_per_plane=processed_per_plane,
            jumping=jumping,
            config=self.config,
        )
        counters.tags["shape"] = (a.logical_vectors, a.logical_k, b.logical_vectors)
        return counters

    # ------------------------------------------------------------------ #
    # Literal tile loop (executable specification)
    # ------------------------------------------------------------------ #
    def run_tile_loop(self, a: PackedBits, b: PackedBits) -> KernelResult:
        """Run the kernel one WMMA fragment at a time.

        Semantically identical to :meth:`run`; kept separate because it is
        O(interpreted-python) per tile.  Used by tests and by anyone who
        wants to trace exactly what the CUDA kernel would do.
        """
        _check_operands(a, b)
        mt = a.padded_vectors // 8
        kt = a.k_words // 4
        nt = b.padded_vectors // 8
        jumping = self.config.zero_tile_jumping and a.bits == 1
        cross_tile = self.config.reuse == "cross-tile"

        counters = KernelCounters(schedule=self.config.reuse, launches=1)
        out_padded = np.zeros((a.padded_vectors, b.padded_vectors), dtype=np.int64)
        # Census identical to the fast path (Figure 8 metric).
        for i in range(a.bits):
            mask = tile_nonzero_mask(a.plane(i))
            counters.tiles_total += mask.size
            if jumping:
                counters.tiles_processed += int(mask.sum())
                counters.tiles_skipped += int(mask.size - mask.sum())
            else:
                counters.tiles_processed += mask.size

        # Stage B through "shared memory" (charged once per tile/plane).
        for _ in range(kt * nt * a.bits * b.bits):
            counters.frag_loads_b += 1
            counters.global_bytes_read += TILE_OPERAND_BYTES

        accum = {}  # (m, n) -> accumulator fragment held across k/bit loops

        def visit_tile(ai: int, m: int, k: int, planes_b: range) -> None:
            """Process A tile (plane ai, m, k) against the given B planes."""
            if jumping:
                tile = a.plane(ai)[m * 8 : m * 8 + 8, k * 4 : k * 4 + 4]
                if not tile.any():
                    # Wasted ballot read: the 128 bytes were inspected and
                    # discarded.  (A surviving tile's read is charged to
                    # its fragment load below.)
                    counters.global_bytes_read += TILE_OPERAND_BYTES
                    return
            a_frag = load_matrix_sync("matrix_a", a.plane(ai), m, k, counters=counters)
            for bj in planes_b:
                for n in range(nt):
                    b_frag = load_matrix_sync(
                        "matrix_b", b.plane(bj), n, k
                    )  # shared-memory hit: bytes charged above
                    c_frag = accum.setdefault((m, n), make_fragment("accumulator"))
                    bmma_sync(c_frag, a_frag, b_frag, shift=ai + bj, counters=counters)

        if cross_tile:
            # §4.4: load each surviving A tile once, emit all bit levels.
            for ai in range(a.bits):
                for m in range(mt):
                    for k in range(kt):
                        visit_tile(ai, m, k, range(b.bits))
            # Every output tile is stored, including ones whose A row was
            # entirely jumped (their accumulators hold zeros).
            zero_frag = make_fragment("accumulator")
            for m in range(mt):
                for n in range(nt):
                    frag = accum.get((m, n), zero_frag)
                    store_matrix_sync(out_padded, frag, m, n, counters=counters)
        else:
            # Figure 6a: complete the output at each bit level in turn,
            # read-modify-writing the C tiles between passes.
            first_pass = True
            for ai in range(a.bits):
                for bj in range(b.bits):
                    accum.clear()
                    for m in range(mt):
                        for k in range(kt):
                            visit_tile(ai, m, k, range(bj, bj + 1))
                    for m in range(mt):
                        for n in range(nt):
                            if not first_pass:
                                counters.global_bytes_read += TILE_ACCUM_BYTES
                            frag = accum.get((m, n))
                            if frag is not None:
                                out_padded[m * 8 : m * 8 + 8, n * 8 : n * 8 + 8] += (
                                    frag.data
                                )
                            counters.frag_stores += 1
                            counters.global_bytes_written += TILE_ACCUM_BYTES
                    first_pass = False

        counters.tags = {
            "shape": (a.logical_vectors, a.logical_k, b.logical_vectors),
            "bits": (a.bits, b.bits),
            "tiles_mk": mt * kt,
            "jumping": jumping,
        }
        output = out_padded[: a.logical_vectors, : b.logical_vectors]
        return KernelResult(output=output, counters=counters)
