"""Analytical timing model for the emulated Tensor Core kernels.

Converts :class:`~repro.tc.counters.KernelCounters` into modeled seconds on
a :class:`~repro.tc.hardware.DeviceSpec`.  The model is a roofline with two
additive penalty terms:

.. math::

    t = t_{launch} + \\max(t_{compute}, t_{stream}) + t_{reload}

* ``t_compute`` — bmma instructions divided by the calibrated effective
  1-bit TC rate (Table 3 fit; see :mod:`repro.tc.hardware`).  The
  cross-tile schedule pays a small register-pressure factor when the
  working set is small enough for the kernel to be latency-bound — this is
  the regime in which the paper's Figure 10 measures reuse *hurting*.
* ``t_stream`` — coalesced global traffic over effective DRAM bandwidth.
* ``t_reload`` — repeated A-tile fetches (the cross-bit schedule's
  signature cost).  Re-reads are free while the packed A plane fits in L2
  and pay scattered-access bandwidth once it spills — which is what makes
  non-zero tile reuse matter only for large matrices (Figure 10's shape).

All outputs are *modeled seconds* on the emulated device, not wall-clock of
this process; benchmark harnesses label them as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError
from .counters import KernelCounters
from .hardware import RTX3090, DeviceSpec
from .kernel import KernelConfig, derive_tile_counters
from .wmma import TILE_OPERAND_BYTES

__all__ = [
    "MMA_FLOPS",
    "TimeBreakdown",
    "TCCostModel",
    "useful_flops",
    "tflops",
]

#: Bit-level FLOPs of one m8n8k128 bmma (multiply + add per MAC).
MMA_FLOPS = 2 * 8 * 8 * 128

#: Compute-rate penalty of the cross-tile schedule when the kernel is
#: latency-bound (small working set): holding one accumulator per bit level
#: raises register pressure and lowers occupancy.
_CROSS_TILE_PENALTY_SMALL = 1.06
#: Residual penalty once the kernel is throughput-bound.
_CROSS_TILE_PENALTY_LARGE = 1.02
#: Fraction of L2 available to left-operand tile re-reads; the rest is
#: occupied by streamed B planes and the C working set.
_L2_A_SHARE = 0.25


@dataclass(frozen=True)
class TimeBreakdown:
    """Modeled kernel time, decomposed for reporting and ablation."""

    launch_s: float
    compute_s: float
    stream_s: float
    reload_s: float

    @property
    def total_s(self) -> float:
        """Roofline total: launch + max(compute, stream) + reload."""
        return self.launch_s + max(self.compute_s, self.stream_s) + self.reload_s

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3

    @property
    def bound(self) -> str:
        """Which roofline arm dominates: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_s >= self.stream_s else "memory"


def useful_flops(m: int, k: int, n: int) -> int:
    """Algorithmic FLOPs of an ``m x k x n`` GEMM (what TFLOPs plots count)."""
    return 2 * m * k * n


def tflops(flops: float, seconds: float) -> float:
    """Throughput in TFLOP/s; 0 for degenerate timings."""
    if seconds <= 0:
        return 0.0
    return flops / seconds / 1e12


class TCCostModel:
    """Timing model for QGTC kernels on an emulated device."""

    def __init__(self, device: DeviceSpec = RTX3090):
        self.device = device

    # ------------------------------------------------------------------ #
    @property
    def mma_rate(self) -> float:
        """Sustained bmma instructions per second at full utilization."""
        return self.device.bit1_tc_effective_tflops * 1e12 / MMA_FLOPS

    def kernel_time(self, counters: KernelCounters) -> TimeBreakdown:
        """Modeled time of one launch described by measured counters."""
        dev = self.device
        bits = counters.tags.get("bits")
        tiles_mk = counters.tags.get("tiles_mk")

        # --- compute arm -------------------------------------------------- #
        compute = counters.mma_ops / self.mma_rate
        a_plane_bytes = (
            tiles_mk * TILE_OPERAND_BYTES if tiles_mk is not None else None
        )
        # L2 residency of the packed A plane: capacity is shared with the
        # streamed B planes and the C working set, so only a fraction is
        # available to A tile re-reads.
        if a_plane_bytes is not None and a_plane_bytes > 0:
            available = dev.l2_bytes * _L2_A_SHARE
            miss_fraction = min(max(1.0 - available / a_plane_bytes, 0.0), 1.0)
        else:
            miss_fraction = 0.0
        if counters.schedule == "cross-tile" and counters.mma_ops:
            resident = 1.0 - miss_fraction
            compute *= _CROSS_TILE_PENALTY_LARGE + resident * (
                _CROSS_TILE_PENALTY_SMALL - _CROSS_TILE_PENALTY_LARGE
            )

        # --- memory arms --------------------------------------------------- #
        # Repeat A-tile fetches beyond the first pass are L2 hits for the
        # resident part of the plane, scattered DRAM reads for the rest.
        repeat_loads = max(counters.frag_loads_a - counters.tiles_processed, 0)
        reload_bytes = repeat_loads * TILE_OPERAND_BYTES
        reload = reload_bytes * miss_fraction / (dev.uncoalesced_bw_gbs * 1e9)
        stream_bytes = counters.global_bytes - reload_bytes
        stream = max(stream_bytes, 0) / dev.effective_dram_bw

        launch = counters.launches * dev.kernel_launch_s
        # Pipeline drain/refill between bit-plane passes (see DeviceSpec).
        # Beyond a few hundred passes consecutive drains overlap with issue,
        # so the term saturates (calibrated against Figure 7a's 32-bit bars).
        if bits is not None and counters.mma_ops:
            passes = min(bits[0] * bits[1], 512)
            launch += passes * dev.tc_pass_overhead_s * counters.launches
        return TimeBreakdown(
            launch_s=launch, compute_s=compute, stream_s=stream, reload_s=reload
        )

    # ------------------------------------------------------------------ #
    # Analytic entry points (no data needed)
    # ------------------------------------------------------------------ #
    def gemm_counters(
        self,
        m: int,
        k: int,
        n: int,
        bits_a: int,
        bits_b: int,
        *,
        nonzero_tile_fraction: float = 1.0,
        config: KernelConfig | None = None,
    ) -> KernelCounters:
        """Counters for an ``m x k x n`` GEMM with a synthetic tile density.

        Used by the throughput studies (Figures 7c/9, Table 3) where the
        operand is a dense benchmark matrix rather than a real subgraph.
        """
        if not 0.0 <= nonzero_tile_fraction <= 1.0:
            raise ShapeError(
                f"nonzero_tile_fraction must be in [0, 1], got {nonzero_tile_fraction}"
            )
        config = config or KernelConfig()
        mt = max((m + 7) // 8, 1)
        kt = max((k + 127) // 128, 1)
        nt = max((n + 7) // 8, 1)
        jumping = config.zero_tile_jumping and bits_a == 1
        total_mk = mt * kt
        if jumping:
            processed = [round(total_mk * nonzero_tile_fraction)] * bits_a
        else:
            processed = [total_mk] * bits_a
        return derive_tile_counters(
            mt=mt,
            kt=kt,
            nt=nt,
            bits_a=bits_a,
            bits_b=bits_b,
            processed_per_plane=processed,
            jumping=jumping,
            config=config,
        )

    def gemm_time(
        self,
        m: int,
        k: int,
        n: int,
        bits_a: int,
        bits_b: int,
        *,
        nonzero_tile_fraction: float = 1.0,
        config: KernelConfig | None = None,
    ) -> TimeBreakdown:
        """Modeled time of an analytic GEMM (see :meth:`gemm_counters`)."""
        counters = self.gemm_counters(
            m,
            k,
            n,
            bits_a,
            bits_b,
            nonzero_tile_fraction=nonzero_tile_fraction,
            config=config,
        )
        return self.kernel_time(counters)

    def gemm_tflops(
        self,
        m: int,
        k: int,
        n: int,
        bits_a: int,
        bits_b: int,
        *,
        nonzero_tile_fraction: float = 1.0,
        config: KernelConfig | None = None,
    ) -> float:
        """Achieved useful TFLOP/s — the unit Figures 7c/9 and Table 3 plot."""
        t = self.gemm_time(
            m,
            k,
            n,
            bits_a,
            bits_b,
            nonzero_tile_fraction=nonzero_tile_fraction,
            config=config,
        )
        return tflops(useful_flops(m, k, n), t.total_s)
