"""Zero-tile detection for the adjacency operand (paper §4.3).

METIS makes subgraphs dense, but many ``8 x 128``-bit TC tiles of the
(batched) adjacency matrix are still all-zero — mostly the blocks *between*
subgraphs in a batch, plus missing intra-subgraph edges.  QGTC detects them
with 8 threads each loading a ``uint4`` (4 consecutive int32 = one row of
the tile), OR-reducing their words, and a warp ballot combining the 8 lane
predicates; a zero ballot means the whole tile can be jumped.

The emulation computes the same predicate for *every* tile at once with a
vectorized OR-reduction over the packed words — bit-identical to the
per-tile ballot, just batched.
"""

from __future__ import annotations

import numpy as np

# The ballot emulation itself lives in ``core`` (the ``sparse`` host engine
# shares it); re-exported here because §4.3 is where the paper defines it.
from ..core.bitpack import tile_nonzero_mask
from .counters import KernelCounters

__all__ = ["tile_nonzero_mask", "zero_tile_summary", "TileSummary"]

from dataclasses import dataclass


@dataclass(frozen=True)
class TileSummary:
    """Tile census of an adjacency plane — the quantity Figure 8 plots."""

    total_tiles: int
    nonzero_tiles: int

    @property
    def zero_tiles(self) -> int:
        return self.total_tiles - self.nonzero_tiles

    @property
    def processed_ratio(self) -> float:
        """Fraction of tiles a jumping kernel still processes (Figure 8 bar)."""
        if self.total_tiles == 0:
            return 0.0
        return self.nonzero_tiles / self.total_tiles


def zero_tile_summary(
    plane_words: np.ndarray, *, counters: KernelCounters | None = None
) -> TileSummary:
    """Census the tiles of a packed plane, optionally charging counters.

    The zero-tile check itself reads every word once; its traffic is charged
    to ``counters.global_bytes_read`` because the jump test is not free —
    the paper's §6.3 win is that a 128-byte read replaces a full
    load-fragment + bmma pipeline.
    """
    mask = tile_nonzero_mask(plane_words)
    summary = TileSummary(total_tiles=mask.size, nonzero_tiles=int(mask.sum()))
    if counters is not None:
        counters.tiles_total += summary.total_tiles
        counters.tiles_skipped += summary.zero_tiles
        counters.global_bytes_read += plane_words.nbytes
    return summary
