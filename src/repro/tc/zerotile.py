"""Zero-tile detection for the adjacency operand (paper §4.3).

METIS makes subgraphs dense, but many ``8 x 128``-bit TC tiles of the
(batched) adjacency matrix are still all-zero — mostly the blocks *between*
subgraphs in a batch, plus missing intra-subgraph edges.  QGTC detects them
with 8 threads each loading a ``uint4`` (4 consecutive int32 = one row of
the tile), OR-reducing their words, and a warp ballot combining the 8 lane
predicates; a zero ballot means the whole tile can be jumped.

The emulation computes the same predicate for *every* tile at once with a
vectorized OR-reduction over the packed words — bit-identical to the
per-tile ballot, just batched.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .counters import KernelCounters

__all__ = ["tile_nonzero_mask", "zero_tile_summary", "TileSummary"]

from dataclasses import dataclass


def tile_nonzero_mask(plane_words: np.ndarray) -> np.ndarray:
    """Boolean mask of non-zero ``8 x 128``-bit tiles of a packed plane.

    Parameters
    ----------
    plane_words:
        Packed 1-bit plane, shape ``(padded_vectors, k_words)`` uint32 with
        ``padded_vectors % 8 == 0`` and ``k_words % 4 == 0`` (guaranteed by
        PAD8/PAD128 packing).

    Returns
    -------
    ``(padded_vectors // 8, k_words // 4)`` boolean array; ``True`` marks a
    tile that contains at least one set bit and must be processed.
    """
    if plane_words.ndim != 2:
        raise ShapeError("expected a 2-D packed plane")
    rows, kwords = plane_words.shape
    if rows % 8 or kwords % 4:
        raise ShapeError(
            f"plane shape {plane_words.shape} is not a whole number of 8x128 tiles"
        )
    tiles = plane_words.reshape(rows // 8, 8, kwords // 4, 4)
    # Per-thread uint4 OR (axis -1), then the warp-ballot across the 8 rows
    # (axis 1): nonzero ballot == tile has an edge.
    per_row = np.bitwise_or.reduce(tiles, axis=-1)
    return np.bitwise_or.reduce(per_row, axis=1) != 0


@dataclass(frozen=True)
class TileSummary:
    """Tile census of an adjacency plane — the quantity Figure 8 plots."""

    total_tiles: int
    nonzero_tiles: int

    @property
    def zero_tiles(self) -> int:
        return self.total_tiles - self.nonzero_tiles

    @property
    def processed_ratio(self) -> float:
        """Fraction of tiles a jumping kernel still processes (Figure 8 bar)."""
        if self.total_tiles == 0:
            return 0.0
        return self.nonzero_tiles / self.total_tiles


def zero_tile_summary(
    plane_words: np.ndarray, *, counters: KernelCounters | None = None
) -> TileSummary:
    """Census the tiles of a packed plane, optionally charging counters.

    The zero-tile check itself reads every word once; its traffic is charged
    to ``counters.global_bytes_read`` because the jump test is not free —
    the paper's §6.3 win is that a 128-byte read replaces a full
    load-fragment + bmma pipeline.
    """
    mask = tile_nonzero_mask(plane_words)
    summary = TileSummary(total_tiles=mask.size, nonzero_tiles=int(mask.sum()))
    if counters is not None:
        counters.tiles_total += summary.total_tiles
        counters.tiles_skipped += summary.zero_tiles
        counters.global_bytes_read += plane_words.nbytes
    return summary
