"""Zero-tile detection for the adjacency operand (paper §4.3).

.. deprecated::
    This module is a compatibility shim.  The ballot emulation
    (:func:`tile_nonzero_mask`) lives in :mod:`repro.core.bitpack`, where
    both the ``sparse`` host backend and the TC emulator's jump logic
    share one definition; the census summary
    (:class:`TileSummary`/:func:`zero_tile_summary`) lives in
    :mod:`repro.tc.kernel` next to the :class:`~repro.tc.kernel.TileSkipPlan`
    machinery that consumes it.  The names remain importable from here —
    §4.3 is where the paper defines them — but new code should import from
    the canonical homes.
"""

from __future__ import annotations

from ..core.bitpack import recensus_tiles, tile_nonzero_mask
from .kernel import TileSummary, zero_tile_summary

__all__ = [
    "TileSummary",
    "recensus_tiles",
    "tile_nonzero_mask",
    "zero_tile_summary",
]
