"""Warp Matrix Multiply-Accumulate emulation (paper §2.3, Listing 1).

Reproduces the four WMMA operations QGTC's CUDA kernels use, operating on
the packed word storage of :mod:`repro.core.bitpack`:

* :func:`load_matrix_sync` — stage an 8x128-bit operand tile into a fragment,
* :func:`bmma_sync` — the 1-bit ``D = popc(A & B) + C`` tile product,
* :func:`store_matrix_sync` — write an 8x8 accumulator tile back,
* :meth:`Fragment.fill` — ``wmma::fill_fragment``.

Every call optionally charges a :class:`~repro.tc.counters.KernelCounters`
so higher-level kernels account traffic exactly where it occurs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .counters import KernelCounters
from .fragments import FRAG_A_SHAPE, Fragment, make_fragment

__all__ = ["load_matrix_sync", "bmma_sync", "store_matrix_sync"]

#: Bytes of one 8x128-bit operand tile (8 rows x 4 words x 4 bytes).
TILE_OPERAND_BYTES = 8 * 4 * 4
#: Bytes of one 8x8 uint32 accumulator tile.
TILE_ACCUM_BYTES = 8 * 8 * 4


def load_matrix_sync(
    role: str,
    words: np.ndarray,
    tile_row: int,
    tile_kword: int,
    *,
    counters: KernelCounters | None = None,
) -> Fragment:
    """Load one operand tile from packed global memory into a fragment.

    Parameters
    ----------
    role:
        ``"matrix_a"`` or ``"matrix_b"``.
    words:
        Packed plane, shape ``(vectors, k_words)`` uint32 — rows of ``A``
        (column-wise compression) or columns of ``B`` (row-wise).
    tile_row:
        Tile index along the vector axis (each tile covers 8 vectors).
    tile_kword:
        Tile index along K (each tile covers 4 words = 128 bits).
    """
    if role not in ("matrix_a", "matrix_b"):
        raise ShapeError(f"operand role must be matrix_a/matrix_b, got {role!r}")
    if words.ndim != 2 or words.dtype != np.uint32:
        raise ShapeError("packed plane must be a 2-D uint32 array")
    r0, w0 = tile_row * 8, tile_kword * 4
    if r0 + 8 > words.shape[0] or w0 + 4 > words.shape[1]:
        raise ShapeError(
            f"tile ({tile_row}, {tile_kword}) out of bounds for plane {words.shape}"
        )
    frag = Fragment(role=role, data=np.ascontiguousarray(words[r0 : r0 + 8, w0 : w0 + 4]))
    if counters is not None:
        if role == "matrix_a":
            counters.frag_loads_a += 1
        else:
            counters.frag_loads_b += 1
        counters.global_bytes_read += TILE_OPERAND_BYTES
    return frag


def bmma_sync(
    c_frag: Fragment,
    a_frag: Fragment,
    b_frag: Fragment,
    *,
    shift: int = 0,
    counters: KernelCounters | None = None,
) -> Fragment:
    """1-bit tensor-core tile product: ``C += popc(A_row & B_col) << shift``.

    ``shift`` implements the bit-position weighting of the composed
    any-bitwidth GEMM (Eq. 5/6): hardware bmma always accumulates at weight
    1, and QGTC's kernel shifts partial tiles during the epilogue; folding
    the shift here keeps the emulation single-pass without changing the
    arithmetic.
    """
    if a_frag.role != "matrix_a" or b_frag.role != "matrix_b":
        raise ShapeError("bmma_sync operand fragments have wrong roles")
    if c_frag.role != "accumulator":
        raise ShapeError("bmma_sync accumulator fragment has wrong role")
    if a_frag.data.shape != FRAG_A_SHAPE:
        raise ShapeError("malformed A fragment")
    # popcount(a & b) summed over the 4 K-words = 1-bit dot product of the
    # 128-bit row/column pair (paper Eq. 7).
    anded = a_frag.data[:, None, :] & b_frag.data[None, :, :]
    if hasattr(np, "bitwise_count"):
        dots = np.bitwise_count(anded).sum(axis=-1, dtype=np.int64)
    else:  # pragma: no cover - exercised only on NumPy < 2.0
        from ..core.bitops import popcount_table

        dots = popcount_table(anded).sum(axis=-1, dtype=np.int64)
    c_frag.data += dots << shift
    if counters is not None:
        counters.mma_ops += 1
    return c_frag


def store_matrix_sync(
    out: np.ndarray,
    c_frag: Fragment,
    tile_row: int,
    tile_col: int,
    *,
    counters: KernelCounters | None = None,
) -> None:
    """Store an accumulator tile into the int64 result matrix."""
    if c_frag.role != "accumulator":
        raise ShapeError("store_matrix_sync expects an accumulator fragment")
    r0, c0 = tile_row * 8, tile_col * 8
    if r0 + 8 > out.shape[0] or c0 + 8 > out.shape[1]:
        raise ShapeError(
            f"tile ({tile_row}, {tile_col}) out of bounds for output {out.shape}"
        )
    out[r0 : r0 + 8, c0 : c0 + 8] = c_frag.data
    if counters is not None:
        counters.frag_stores += 1
        counters.global_bytes_written += TILE_ACCUM_BYTES


def fresh_accumulator() -> Fragment:
    """Convenience: a zeroed accumulator fragment."""
    return make_fragment("accumulator")
