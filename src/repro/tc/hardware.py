"""Emulated GPU device descriptions.

The paper evaluates on an NVIDIA Ampere RTX 3090 (24 GB, PCIe 4.0 x16).  We
have no GPU in this environment, so performance numbers come from an
analytical model parameterized by the device description below.  Peak
numbers are the published datasheet values; *effective* rates are calibrated
so the model reproduces the paper's measured throughput tables (see
``DESIGN.md`` §5 and the derivation notes next to each constant).

Calibration sources:

* Table 3 of the paper pins the effective 1-bit TC GEMM rate and the fixed
  per-kernel overhead: fitting ``t = t0 + flops / R`` to the six QGTC(1-bit)
  entries gives ``R ≈ 113 TFLOP/s`` and ``t0 ≈ 6 µs`` (skewed GNN shapes
  reach ~10 % of the 1136 TOP/s binary peak).
* The same fit on the CUTLASS-int4 column gives ``R ≈ 26 TFLOP/s``,
  ``t0 ≈ 15 µs``.
* cuBLAS int8 (Figure 7c) lands near the int4 effective rate on these
  shapes; we use ``26 TFLOP/s`` with a 10 µs launch cost.
* DGL's CUDA-core SpMM efficiency (5–10 % of fp32 peak) follows published
  SpMM studies; the end-to-end Figure 7 magnitudes then emerge from kernel
  counts times launch overhead plus these rates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import DeviceError

__all__ = ["DeviceSpec", "RTX3090", "A100", "LAPTOP_GPU", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Performance-relevant description of an emulated GPU platform.

    Peak rates are datasheet numbers; ``*_effective_tflops`` are the
    calibrated achieved rates on GNN-shaped (tall-skinny) GEMMs that the
    cost model charges.  All rates are in units of *useful* FLOPs — padding
    waste is charged explicitly by the kernel counters, not hidden in the
    rate.
    """

    name: str
    sm_count: int
    #: Boost clock in GHz (informational; the model works in ops/s).
    clock_ghz: float
    #: Datasheet peak fp32 CUDA-core throughput.
    fp32_peak_tflops: float
    #: Datasheet peak 1-bit tensor-core throughput (binary TOPS).
    bit1_tc_peak_tops: float
    #: Datasheet peak int8 tensor-core throughput.
    int8_tc_peak_tops: float

    # -- calibrated effective rates (see module docstring) ---------------- #
    #: Achieved 1-bit TC BMM rate on GNN shapes at full utilization.
    bit1_tc_effective_tflops: float
    #: Achieved cuBLAS int8 TC GEMM rate on the same shapes.
    int8_tc_effective_tflops: float
    #: Achieved CUTLASS int4 TC GEMM rate on the same shapes.
    int4_tc_effective_tflops: float
    #: Achieved dense fp32 GEMM rate (CUDA cores, cuBLAS).
    fp32_effective_tflops: float
    #: Achieved fp32 CSR SpMM rate (cuSPARSE-like), heavily memory bound.
    spmm_effective_tflops: float

    # -- memory system ----------------------------------------------------- #
    #: HBM/GDDR bandwidth in GB/s (datasheet).
    dram_bw_gbs: float
    #: Fraction of DRAM bandwidth streaming kernels achieve.
    dram_efficiency: float
    #: Host-device PCIe bandwidth in GB/s (PCIe 4.0 x16 = 32 GB/s).
    pcie_bw_gbs: float
    #: Fraction of PCIe bandwidth achieved for large pinned transfers.
    pcie_efficiency: float
    #: Fixed cost of initiating one host-device transfer, in seconds.
    pcie_latency_s: float

    # -- launch overheads --------------------------------------------------- #
    #: Fixed per-kernel cost (launch + tail) for hand-written TC kernels.
    kernel_launch_s: float
    #: Fixed per-kernel cost for library (cuBLAS/cuSPARSE/DGL) kernels,
    #: which add dispatcher and descriptor setup on top of the raw launch.
    library_launch_s: float

    # -- cache hierarchy ----------------------------------------------------- #
    #: L2 capacity in bytes.  Operand re-reads that fit in L2 are free in
    #: the model; beyond it they pay ``uncoalesced_bw_gbs``.
    l2_bytes: int = 6 * 2**20
    #: Achieved bandwidth of scattered 128-byte tile re-reads that miss L2.
    uncoalesced_bw_gbs: float = 25.0
    #: Achieved bandwidth of row-gather access (SpMM reading neighbour
    #: feature rows of ~100-500 contiguous bytes at random offsets).
    gather_bw_gbs: float = 100.0
    #: Per bit-plane-pair pipeline cost inside one kernel launch.  The
    #: composed any-bitwidth GEMM runs ``bits_a x bits_b`` WMMA pipeline
    #: passes; each pass drains/refills the TC pipeline even when the tile
    #: count is tiny, which is what makes 16/32-bit QGTC markedly slower
    #: than 2-bit on small subgraphs (Figure 7a's Proteins bars).
    tc_pass_overhead_s: float = 5e-8

    def __post_init__(self) -> None:
        positive = [
            ("sm_count", self.sm_count),
            ("clock_ghz", self.clock_ghz),
            ("fp32_peak_tflops", self.fp32_peak_tflops),
            ("bit1_tc_peak_tops", self.bit1_tc_peak_tops),
            ("int8_tc_peak_tops", self.int8_tc_peak_tops),
            ("bit1_tc_effective_tflops", self.bit1_tc_effective_tflops),
            ("int8_tc_effective_tflops", self.int8_tc_effective_tflops),
            ("int4_tc_effective_tflops", self.int4_tc_effective_tflops),
            ("fp32_effective_tflops", self.fp32_effective_tflops),
            ("spmm_effective_tflops", self.spmm_effective_tflops),
            ("dram_bw_gbs", self.dram_bw_gbs),
            ("pcie_bw_gbs", self.pcie_bw_gbs),
            ("kernel_launch_s", self.kernel_launch_s),
            ("library_launch_s", self.library_launch_s),
        ]
        for field_name, value in positive:
            if value <= 0:
                raise DeviceError(f"{field_name} must be positive, got {value}")
        for field_name, value in [
            ("dram_efficiency", self.dram_efficiency),
            ("pcie_efficiency", self.pcie_efficiency),
        ]:
            if not 0 < value <= 1:
                raise DeviceError(f"{field_name} must be in (0, 1], got {value}")
        if self.bit1_tc_effective_tflops > self.bit1_tc_peak_tops:
            raise DeviceError("effective 1-bit rate exceeds datasheet peak")
        if self.fp32_effective_tflops > self.fp32_peak_tflops:
            raise DeviceError("effective fp32 rate exceeds datasheet peak")

    # ------------------------------------------------------------------ #
    @property
    def effective_dram_bw(self) -> float:
        """Achieved DRAM bandwidth in bytes/s."""
        return self.dram_bw_gbs * 1e9 * self.dram_efficiency

    @property
    def effective_pcie_bw(self) -> float:
        """Achieved PCIe bandwidth in bytes/s."""
        return self.pcie_bw_gbs * 1e9 * self.pcie_efficiency

    @property
    def tc_speedup_over_cuda(self) -> float:
        """Datasheet TC-over-CUDA-core throughput ratio (paper §1: >10x)."""
        return self.bit1_tc_peak_tops / self.fp32_peak_tflops

    def scaled(self, factor: float, name: str | None = None) -> "DeviceSpec":
        """A device with all throughputs/bandwidths scaled by ``factor``.

        Useful for what-if studies (e.g. a half-speed part keeps every
        crossover in the same place — a property the tests assert).
        """
        if factor <= 0:
            raise DeviceError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            fp32_peak_tflops=self.fp32_peak_tflops * factor,
            bit1_tc_peak_tops=self.bit1_tc_peak_tops * factor,
            int8_tc_peak_tops=self.int8_tc_peak_tops * factor,
            bit1_tc_effective_tflops=self.bit1_tc_effective_tflops * factor,
            int8_tc_effective_tflops=self.int8_tc_effective_tflops * factor,
            int4_tc_effective_tflops=self.int4_tc_effective_tflops * factor,
            fp32_effective_tflops=self.fp32_effective_tflops * factor,
            spmm_effective_tflops=self.spmm_effective_tflops * factor,
            dram_bw_gbs=self.dram_bw_gbs * factor,
            pcie_bw_gbs=self.pcie_bw_gbs * factor,
        )


#: The paper's evaluation platform (Ampere GA102, 82 SMs, 24 GB GDDR6X).
RTX3090 = DeviceSpec(
    name="RTX3090",
    sm_count=82,
    clock_ghz=1.70,
    fp32_peak_tflops=35.6,
    bit1_tc_peak_tops=1136.0,
    int8_tc_peak_tops=284.0,
    bit1_tc_effective_tflops=113.0,  # Table 3 fit (see module docstring)
    int8_tc_effective_tflops=26.0,   # Figure 7c fit
    int4_tc_effective_tflops=26.0,   # Table 3 CUTLASS fit
    fp32_effective_tflops=21.0,      # ~60 % of peak for dense GEMM
    spmm_effective_tflops=2.5,       # ~7 % of peak, memory-bound SpMM
    dram_bw_gbs=936.0,
    dram_efficiency=0.75,
    pcie_bw_gbs=32.0,
    pcie_efficiency=0.80,
    pcie_latency_s=10e-6,
    kernel_launch_s=6e-6,            # Table 3 fit intercept
    library_launch_s=10e-6,
)

#: Datacenter Ampere part (A100-SXM4-40GB) for cross-device what-ifs.
A100 = DeviceSpec(
    name="A100",
    sm_count=108,
    clock_ghz=1.41,
    fp32_peak_tflops=19.5,
    bit1_tc_peak_tops=1248.0,
    int8_tc_peak_tops=624.0,
    bit1_tc_effective_tflops=124.0,
    int8_tc_effective_tflops=55.0,
    int4_tc_effective_tflops=55.0,
    fp32_effective_tflops=12.0,
    spmm_effective_tflops=3.5,
    dram_bw_gbs=1555.0,
    dram_efficiency=0.80,
    pcie_bw_gbs=32.0,
    pcie_efficiency=0.80,
    pcie_latency_s=10e-6,
    kernel_launch_s=6e-6,
    library_launch_s=10e-6,
)

#: A deliberately small part (RTX 3070-laptop-like) used by tests to check
#: that conclusions are not an artifact of one device's constants.
LAPTOP_GPU = RTX3090.scaled(0.45, name="RTX3070M")

_REGISTRY = {spec.name.lower(): spec for spec in (RTX3090, A100, LAPTOP_GPU)}


def get_device(name: str) -> DeviceSpec:
    """Look up a built-in device by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
