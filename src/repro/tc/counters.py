"""Event counters collected by the emulated Tensor Core kernel.

The cost model never guesses densities or traffic: the functional kernel
counts what actually happened (tiles skipped by zero-tile jumping, fragment
loads under each reuse schedule, bytes moved) and the model converts those
counts to time.  This mirrors how the paper's §6.3 studies report measured
tile ratios rather than estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Operation and traffic counts for one emulated kernel launch.

    All counts are totals for the launch.  ``mma_ops`` counts 8x8x128 1-bit
    WMMA instructions — the unit the effective-throughput calibration is
    expressed in (one mma = 2*8*8*128 = 16384 bit-FLOPs).
    """

    #: Number of 1-bit m8n8k128 WMMA (bmma) instructions issued.
    mma_ops: int = 0
    #: A-matrix fragment loads (8x128-bit tiles moved into registers).
    frag_loads_a: int = 0
    #: B-matrix fragment loads.
    frag_loads_b: int = 0
    #: Accumulator fragment stores back to global memory.
    frag_stores: int = 0
    #: Bytes read from global memory (packed operand words).
    global_bytes_read: int = 0
    #: Bytes written to global memory (results).
    global_bytes_written: int = 0
    #: A-operand tiles inspected by the zero-tile check.
    tiles_total: int = 0
    #: Tiles skipped because the ballot found them all-zero (§4.3).
    tiles_skipped: int = 0
    #: Tiles that proceeded to computation.
    tiles_processed: int = 0
    #: Kernel launches (fused pipelines issue fewer of these).
    launches: int = 0
    #: Label of the reuse schedule that produced these counts.
    schedule: str = ""
    #: Free-form notes (kernel name, shape) for debugging reports.
    tags: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def bit_flops(self) -> int:
        """Total bit-level FLOPs: 2 * M * N * K per mma instruction."""
        return self.mma_ops * 2 * 8 * 8 * 128

    @property
    def skip_fraction(self) -> float:
        """Fraction of inspected A tiles that were jumped (0 when none)."""
        if self.tiles_total == 0:
            return 0.0
        return self.tiles_skipped / self.tiles_total

    @property
    def processed_fraction(self) -> float:
        """Fraction of A tiles actually processed — Figure 8's metric."""
        if self.tiles_total == 0:
            return 0.0
        return self.tiles_processed / self.tiles_total

    @property
    def global_bytes(self) -> int:
        """Total global-memory traffic in bytes."""
        return self.global_bytes_read + self.global_bytes_written

    # ------------------------------------------------------------------ #
    def merge(self, other: "KernelCounters") -> "KernelCounters":
        """Accumulate another launch's counts into this one (in place)."""
        self.mma_ops += other.mma_ops
        self.frag_loads_a += other.frag_loads_a
        self.frag_loads_b += other.frag_loads_b
        self.frag_stores += other.frag_stores
        self.global_bytes_read += other.global_bytes_read
        self.global_bytes_written += other.global_bytes_written
        self.tiles_total += other.tiles_total
        self.tiles_skipped += other.tiles_skipped
        self.tiles_processed += other.tiles_processed
        self.launches += other.launches
        if not self.schedule:
            self.schedule = other.schedule
        return self

    def copy(self) -> "KernelCounters":
        return KernelCounters(
            mma_ops=self.mma_ops,
            frag_loads_a=self.frag_loads_a,
            frag_loads_b=self.frag_loads_b,
            frag_stores=self.frag_stores,
            global_bytes_read=self.global_bytes_read,
            global_bytes_written=self.global_bytes_written,
            tiles_total=self.tiles_total,
            tiles_skipped=self.tiles_skipped,
            tiles_processed=self.tiles_processed,
            launches=self.launches,
            schedule=self.schedule,
            tags=dict(self.tags),
        )
