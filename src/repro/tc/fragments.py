"""WMMA register fragments for the 1-bit Tensor Core tile (paper §2.3).

A 1-bit WMMA operation on Turing/Ampere works on fixed tiles:
``A`` is ``8 x 128`` bits, ``B`` is ``128 x 8`` bits, and the accumulator
``C``/``D`` is ``8 x 8`` in uint32.  Before an ``mma`` the participating
warp must stage each operand tile in a *fragment* — a register region shared
across the warp's 32 threads.

We model a fragment as a small NumPy array plus its role:

* ``matrix_a`` — ``(8, 4)`` uint32: 8 rows x 4 words of 32 bits = 8 x 128.
* ``matrix_b`` — ``(8, 4)`` uint32: 8 *columns*, each packed along K
  (the row-wise compression of §4.2 delivers exactly this layout).
* ``accumulator`` — ``(8, 8)`` int64 (uint32 in hardware; we use int64 so
  the shift-add of high bit positions can never overflow in emulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError

__all__ = [
    "FRAG_A_SHAPE",
    "FRAG_B_SHAPE",
    "FRAG_C_SHAPE",
    "Fragment",
    "make_fragment",
]

FRAG_A_SHAPE = (8, 4)
FRAG_B_SHAPE = (8, 4)
FRAG_C_SHAPE = (8, 8)

_ROLES = {
    "matrix_a": (FRAG_A_SHAPE, np.uint32),
    "matrix_b": (FRAG_B_SHAPE, np.uint32),
    "accumulator": (FRAG_C_SHAPE, np.int64),
}


@dataclass
class Fragment:
    """One warp-level WMMA fragment (see module docstring for layouts)."""

    role: str
    data: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.role not in _ROLES:
            raise ShapeError(
                f"unknown fragment role {self.role!r}; expected one of {sorted(_ROLES)}"
            )
        shape, dtype = _ROLES[self.role]
        if self.data.shape != shape:
            raise ShapeError(
                f"{self.role} fragment must have shape {shape}, got {self.data.shape}"
            )
        if self.data.dtype != dtype:
            raise ShapeError(
                f"{self.role} fragment must have dtype {dtype}, got {self.data.dtype}"
            )

    def fill(self, value: int) -> None:
        """``wmma::fill_fragment`` — set every element (usually zeroing C)."""
        self.data[...] = value

    def copy(self) -> "Fragment":
        return Fragment(role=self.role, data=self.data.copy())


def make_fragment(role: str) -> Fragment:
    """Allocate a zeroed fragment for the given role."""
    if role not in _ROLES:
        raise ShapeError(
            f"unknown fragment role {role!r}; expected one of {sorted(_ROLES)}"
        )
    shape, dtype = _ROLES[role]
    return Fragment(role=role, data=np.zeros(shape, dtype=dtype))
