"""Emulated GPU Tensor Core: WMMA tiles, the QGTC kernel with zero-tile
jumping and non-zero tile reuse, and the calibrated cost model (paper §4)."""

from .costmodel import MMA_FLOPS, TCCostModel, TimeBreakdown, tflops, useful_flops
from .counters import KernelCounters
from .fragments import FRAG_A_SHAPE, FRAG_B_SHAPE, FRAG_C_SHAPE, Fragment, make_fragment
from .hardware import A100, LAPTOP_GPU, RTX3090, DeviceSpec, get_device
from ..core.bitpack import tile_nonzero_mask
from .kernel import (
    BitGemmKernel,
    KernelConfig,
    KernelResult,
    ReuseMode,
    TileSkipPlan,
    TileSummary,
    derive_tile_counters,
    plan_tile_skip,
    zero_tile_summary,
)
from .wmma import bmma_sync, load_matrix_sync, store_matrix_sync

__all__ = [
    "A100",
    "FRAG_A_SHAPE",
    "FRAG_B_SHAPE",
    "FRAG_C_SHAPE",
    "LAPTOP_GPU",
    "MMA_FLOPS",
    "RTX3090",
    "BitGemmKernel",
    "DeviceSpec",
    "Fragment",
    "KernelConfig",
    "KernelCounters",
    "KernelResult",
    "ReuseMode",
    "TCCostModel",
    "TileSkipPlan",
    "TileSummary",
    "TimeBreakdown",
    "bmma_sync",
    "derive_tile_counters",
    "get_device",
    "load_matrix_sync",
    "make_fragment",
    "plan_tile_skip",
    "store_matrix_sync",
    "tflops",
    "tile_nonzero_mask",
    "useful_flops",
    "zero_tile_summary",
]
