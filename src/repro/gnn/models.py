"""GNN model definitions: Cluster GCN and Batched GIN (paper §6 benchmarks).

A model here is a stack of layer weight matrices plus the architectural
recipe for one layer:

* **Cluster GCN** (Kipf & Welling backbone run per METIS partition, paper's
  main benchmark): aggregate first, then update —
  ``H = act( Â (X) W + b )`` with ``Â`` the 0/1 adjacency including self
  loops.  Paper setting: 3 layers x 16 hidden.
* **Batched GIN** (Xu et al.): node update before neighbor aggregation
  (the order the paper's §6.1 highlights for its higher
  compute-to-communication ratio) — ``H = act( Â (X W + b) )``.
  Paper setting: 3 layers x 64 hidden.

Weights are fp32; the quantized executor quantizes them per layer at the
configured bitwidth (pre-computed and cached, as the paper notes weights
are reused across subgraphs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..errors import ConfigError

__all__ = ["LayerSpec", "GNNModel", "make_cluster_gcn", "make_batched_gin"]

ModelKind = Literal["gcn", "gin"]


@dataclass(frozen=True)
class LayerSpec:
    """Dimensions and role of one GNN layer."""

    in_dim: int
    out_dim: int
    #: Hidden layers apply the activation + requantization epilogue; the
    #: output layer keeps full precision for the softmax (paper §4.5).
    is_output: bool


@dataclass
class GNNModel:
    """A stack of dense layers executed per subgraph batch."""

    kind: ModelKind
    weights: list[np.ndarray] = field(repr=False)
    biases: list[np.ndarray] = field(repr=False)

    def __post_init__(self) -> None:
        if self.kind not in ("gcn", "gin"):
            raise ConfigError(f"unknown model kind {self.kind!r}")
        if len(self.weights) != len(self.biases):
            raise ConfigError("weights and biases must pair up")
        if not self.weights:
            raise ConfigError("a model needs at least one layer")
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            if w.ndim != 2 or b.shape != (w.shape[1],):
                raise ConfigError(f"layer {i} has inconsistent shapes")
            if i and self.weights[i - 1].shape[1] != w.shape[0]:
                raise ConfigError(
                    f"layer {i} input dim {w.shape[0]} != previous output "
                    f"{self.weights[i - 1].shape[1]}"
                )

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def feature_dim(self) -> int:
        return self.weights[0].shape[0]

    @property
    def num_classes(self) -> int:
        return self.weights[-1].shape[1]

    def layer_specs(self) -> list[LayerSpec]:
        """Per-layer dimension records used by the cost model."""
        out = []
        for i, w in enumerate(self.weights):
            out.append(
                LayerSpec(
                    in_dim=w.shape[0],
                    out_dim=w.shape[1],
                    is_output=(i == len(self.weights) - 1),
                )
            )
        return out

    # ------------------------------------------------------------------ #
    @property
    def aggregate_first(self) -> bool:
        """GCN aggregates before the linear update; GIN updates first."""
        return self.kind == "gcn"


def _init_layers(
    dims: list[int], rng: np.random.Generator
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Glorot-uniform weights, zero biases."""
    weights, biases = [], []
    for d_in, d_out in zip(dims[:-1], dims[1:]):
        limit = np.sqrt(6.0 / (d_in + d_out))
        weights.append(
            rng.uniform(-limit, limit, size=(d_in, d_out)).astype(np.float32)
        )
        biases.append(np.zeros(d_out, dtype=np.float32))
    return weights, biases


def _check_dims(feature_dim: int, hidden_dim: int, num_classes: int, num_layers: int):
    if min(feature_dim, hidden_dim, num_classes) < 1:
        raise ConfigError("all dimensions must be positive")
    if num_layers < 1:
        raise ConfigError(f"need at least one layer, got {num_layers}")


def make_cluster_gcn(
    feature_dim: int,
    num_classes: int,
    *,
    hidden_dim: int = 16,
    num_layers: int = 3,
    seed: int = 0,
) -> GNNModel:
    """The paper's Cluster GCN benchmark model (3 layers, 16 hidden)."""
    _check_dims(feature_dim, hidden_dim, num_classes, num_layers)
    dims = [feature_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
    weights, biases = _init_layers(dims, np.random.default_rng(seed))
    return GNNModel(kind="gcn", weights=weights, biases=biases)


def make_batched_gin(
    feature_dim: int,
    num_classes: int,
    *,
    hidden_dim: int = 64,
    num_layers: int = 3,
    seed: int = 0,
) -> GNNModel:
    """The paper's Batched GIN benchmark model (3 layers, 64 hidden)."""
    _check_dims(feature_dim, hidden_dim, num_classes, num_layers)
    dims = [feature_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
    weights, biases = _init_layers(dims, np.random.default_rng(seed))
    return GNNModel(kind="gin", weights=weights, biases=biases)
