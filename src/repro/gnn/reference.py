"""Full-precision (fp32) reference forward pass.

This is the numerics oracle: what DGL computes on CUDA cores and what the
quantized TC path approximates.  It operates on a
:class:`~repro.graph.batching.SubgraphBatch` exactly like the quantized
executor so the two can be compared row for row.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ShapeError
from ..graph.batching import SubgraphBatch
from .activations import relu, softmax
from .models import GNNModel

__all__ = ["reference_forward", "reference_forward_dense"]


def _batch_sparse_adjacency(batch: SubgraphBatch, self_loops: bool = True) -> sp.csr_matrix:
    """Block-diagonal sparse adjacency of a batch (with self loops)."""
    blocks = [s.graph.to_scipy() for s in batch.members]
    adj = sp.block_diag(blocks, format="csr")
    if self_loops:
        adj = (adj + sp.eye(adj.shape[0], format="csr")).tocsr()
        adj.data[:] = np.minimum(adj.data, 1.0)
    return adj


def reference_forward_dense(
    model: GNNModel,
    adjacency: np.ndarray,
    features: np.ndarray,
    *,
    apply_softmax: bool = False,
) -> np.ndarray:
    """Reference forward on an explicit dense 0/1 adjacency.

    Layer recipe (paper Algorithm 1 plus the §4.5 epilogue rules):

    * GCN: ``H = relu(A (X) W + b)`` on hidden layers, no activation on the
      output layer;
    * GIN: ``H = relu(A (X W + b))`` (update first).
    """
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ShapeError(f"adjacency must be square, got {adjacency.shape}")
    if features.shape[0] != adjacency.shape[0]:
        raise ShapeError(
            f"features rows {features.shape[0]} != adjacency {adjacency.shape[0]}"
        )
    h = features.astype(np.float32)
    adj = adjacency.astype(np.float32)
    for w, b, spec in zip(model.weights, model.biases, model.layer_specs()):
        if model.aggregate_first:
            h = (adj @ h) @ w + b
        else:
            h = adj @ (h @ w + b)
        if not spec.is_output:
            h = relu(h)
    return softmax(h) if apply_softmax else h


def reference_forward(
    model: GNNModel,
    batch: SubgraphBatch,
    *,
    apply_softmax: bool = False,
) -> np.ndarray:
    """Reference forward on a subgraph batch (sparse aggregation).

    Mathematically identical to :func:`reference_forward_dense` on the
    batch's block-diagonal adjacency; uses CSR SpMM the way DGL would.
    """
    adj = _batch_sparse_adjacency(batch)
    h = batch.features().astype(np.float32)
    if h.shape[1] != model.feature_dim:
        raise ShapeError(
            f"feature dim {h.shape[1]} != model expects {model.feature_dim}"
        )
    for w, b, spec in zip(model.weights, model.biases, model.layer_specs()):
        if model.aggregate_first:
            h = np.asarray(adj @ h) @ w + b
        else:
            h = np.asarray(adj @ (h @ w + b))
        if not spec.is_output:
            h = relu(h)
    return softmax(h) if apply_softmax else h
