"""Neural-network primitive operations (NumPy, fp32/fp64).

These are the standard ops QGTC fuses into its kernels (paper §4.5): ReLU,
tanh, batch-norm, plus softmax / cross-entropy for the classification head
and training.  Kept dependency-free and branch-light so both the reference
path and the QAT trainer share one implementation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = [
    "relu",
    "relu_grad",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "cross_entropy_grad",
    "batch_norm",
    "BatchNormParams",
    "accuracy",
]

from dataclasses import dataclass


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise ``max(x, 0)``."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU evaluated at pre-activation ``x``."""
    return (x > 0).astype(x.dtype)


def tanh(x: np.ndarray) -> np.ndarray:
    """Elementwise hyperbolic tangent."""
    return np.tanh(x)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax, numerically stabilized."""
    z = logits - logits.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of integer ``labels`` under ``logits``."""
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"bad shapes for cross entropy: {logits.shape} vs {labels.shape}"
        )
    lsm = log_softmax(logits)
    return float(-lsm[np.arange(labels.size), labels].mean())


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of :func:`cross_entropy` w.r.t. ``logits``."""
    probs = softmax(logits)
    probs[np.arange(labels.size), labels] -= 1.0
    return probs / labels.size


@dataclass(frozen=True)
class BatchNormParams:
    """Inference-mode batch-norm parameters (paper Eq. 8)."""

    mean: np.ndarray
    var: np.ndarray
    gamma: np.ndarray
    beta: np.ndarray
    eps: float = 1e-5


def batch_norm(x: np.ndarray, params: BatchNormParams) -> np.ndarray:
    """Apply inference-mode batch normalization column-wise (paper Eq. 8)."""
    return (
        (x - params.mean) / np.sqrt(params.var + params.eps)
    ) * params.gamma + params.beta


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    if labels.size == 0:
        return 0.0
    return float((logits.argmax(axis=-1) == labels).mean())
