"""GNN models and execution paths: Cluster GCN / Batched GIN definitions,
the fp32 reference, the quantized Tensor-Core forward, and QAT training."""

from .activations import (
    BatchNormParams,
    accuracy,
    batch_norm,
    cross_entropy,
    cross_entropy_grad,
    log_softmax,
    relu,
    relu_grad,
    softmax,
    tanh,
)
from .models import GNNModel, LayerSpec, make_batched_gin, make_cluster_gcn
from .quantized import (
    ActivationCalibration,
    PackedAdjacency,
    PackedLayerWeight,
    QuantizedForwardResult,
    execute_forward_plan,
    pack_batch_adjacency,
    pack_layer_weight,
    quantize_model_weights,
    quantized_forward,
)
from .reference import reference_forward, reference_forward_dense
from .training import QATConfig, TrainResult, fake_quantize, train_qgnn

__all__ = [
    "ActivationCalibration",
    "BatchNormParams",
    "GNNModel",
    "LayerSpec",
    "PackedAdjacency",
    "PackedLayerWeight",
    "QATConfig",
    "QuantizedForwardResult",
    "TrainResult",
    "accuracy",
    "batch_norm",
    "cross_entropy",
    "cross_entropy_grad",
    "execute_forward_plan",
    "fake_quantize",
    "log_softmax",
    "make_batched_gin",
    "make_cluster_gcn",
    "pack_batch_adjacency",
    "pack_layer_weight",
    "quantize_model_weights",
    "quantized_forward",
    "reference_forward",
    "reference_forward_dense",
    "relu",
    "relu_grad",
    "softmax",
    "tanh",
    "train_qgnn",
]
