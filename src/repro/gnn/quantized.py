"""Functional quantized GNN forward pass on the emulated Tensor Core.

Runs a :class:`~repro.gnn.models.GNNModel` over a subgraph batch with every
matrix product executed as a packed bit-GEMM through
:class:`~repro.tc.kernel.BitGemmKernel` — the same arithmetic the CUDA
kernels perform — while carrying affine dequantization corrections so the
result is a genuine approximation of the fp32 reference (error shrinks as
bitwidth grows; the test-suite asserts this convergence).

Affine algebra: a quantized tensor represents ``real ≈ scale * q + c`` with
``c = alpha_min + scale / 2`` (mid-bucket).  For a product of two such
tensors,

.. math::

   A B ≈ s_a s_b\\, (q_a q_b) + s_a c_b\\, r_a 1^T + c_a s_b\\, 1 g_b^T
         + K c_a c_b

where ``r_a`` is the row-sum vector of ``q_a`` and ``g_b`` the column-sum
of ``q_b`` — rank-1 epilogue terms the fused kernel absorbs (paper §4.5).
Only the ``q_a q_b`` term touches the Tensor Core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bitpack import pack_matrix
from ..core.quantization import QuantParams, quantize
from ..errors import BitwidthError, ShapeError
from ..graph.batching import SubgraphBatch
from ..tc.counters import KernelCounters
from ..tc.kernel import BitGemmKernel, KernelConfig
from .activations import relu, softmax
from .models import GNNModel

__all__ = ["QuantizedForwardResult", "quantized_forward", "quantize_model_weights"]


@dataclass(frozen=True)
class QuantizedForwardResult:
    """Logits plus the kernel events the batch generated."""

    logits: np.ndarray
    counters: list[KernelCounters]

    @property
    def total_counters(self) -> KernelCounters:
        total = KernelCounters()
        for c in self.counters:
            total.merge(c)
        return total


def _mid_offset(params: QuantParams) -> float:
    """Constant ``c`` of the affine code model ``real ≈ scale*q + c``."""
    return params.alpha_min + params.scale / 2.0


def quantize_model_weights(
    model: GNNModel, bits: int
) -> list[tuple[np.ndarray, QuantParams]]:
    """Quantize every layer's weights once (cached across subgraphs).

    The paper pre-computes and caches the weight bit-decomposition because
    the same W serves every subgraph at a layer (§3.2 last paragraph).
    """
    if not 1 <= bits <= 32:
        raise BitwidthError(f"weight bits must be in [1, 32], got {bits}")
    return [quantize(w, bits=bits) for w in model.weights]


def _affine_product(
    q_left: np.ndarray,
    p_left: QuantParams,
    q_right: np.ndarray,
    p_right: QuantParams,
    kernel: BitGemmKernel,
    counters: list[KernelCounters],
) -> np.ndarray:
    """Full affine-corrected product of two quantized matrices."""
    k = q_left.shape[1]
    if q_right.shape[0] != k:
        raise ShapeError(f"inner dims differ: {q_left.shape} x {q_right.shape}")
    packed_l = pack_matrix(q_left, p_left.bits, layout="col")
    packed_r = pack_matrix(q_right, p_right.bits, layout="row")
    res = kernel.run(packed_l, packed_r)
    counters.append(res.counters)
    s_l, c_l = p_left.scale, _mid_offset(p_left)
    s_r, c_r = p_right.scale, _mid_offset(p_right)
    row_sums = q_left.sum(axis=1, dtype=np.float64)[:, None]
    col_sums = q_right.sum(axis=0, dtype=np.float64)[None, :]
    return (
        s_l * s_r * res.output
        + s_l * c_r * row_sums
        + c_l * s_r * col_sums
        + k * c_l * c_r
    ).astype(np.float64)


def quantized_forward(
    model: GNNModel,
    batch: SubgraphBatch,
    *,
    feature_bits: int = 4,
    weight_bits: int | None = None,
    kernel_config: KernelConfig | None = None,
    apply_softmax: bool = False,
) -> QuantizedForwardResult:
    """Run a quantized forward pass over one subgraph batch.

    Parameters
    ----------
    feature_bits, weight_bits:
        Activation / weight bitwidths (weights default to the feature
        setting, as in the paper's sweeps).
    kernel_config:
        Zero-tile jumping and reuse switches for the emulated kernel.

    Returns the float logits (full-precision output layer, paper §4.5) and
    the per-kernel event counters.
    """
    if not 1 <= feature_bits <= 32:
        raise BitwidthError(f"feature bits must be in [1, 32], got {feature_bits}")
    weight_bits = feature_bits if weight_bits is None else weight_bits
    kernel = BitGemmKernel(kernel_config or KernelConfig())
    counters: list[KernelCounters] = []

    adjacency = batch.dense_adjacency(self_loops=True).astype(np.int64)
    packed_adj = pack_matrix(adjacency, 1, layout="col")
    degrees = adjacency.sum(axis=1, dtype=np.float64)[:, None]
    weight_q = quantize_model_weights(model, weight_bits)

    h = batch.features().astype(np.float64)

    def aggregate(x_real: np.ndarray) -> np.ndarray:
        """``Â @ x`` with the adjacency exact (1-bit) and x quantized."""
        qx, px = quantize(x_real, bits=feature_bits)
        packed_x = pack_matrix(qx, feature_bits, layout="row")
        res = kernel.run(packed_adj, packed_x)
        counters.append(res.counters)
        # Â is exact binary: real = s_x * (Â q_x) + c_x * degree.
        return px.scale * res.output + _mid_offset(px) * degrees

    def update(x_real: np.ndarray, layer: int) -> np.ndarray:
        """``x @ W + b`` with both operands quantized."""
        qx, px = quantize(x_real, bits=feature_bits)
        qw, pw = weight_q[layer]
        out = _affine_product(qx, px, qw, pw, kernel, counters)
        return out + model.biases[layer]

    for i, spec in enumerate(model.layer_specs()):
        if model.aggregate_first:
            h = update(aggregate(h), i)
        else:
            h = aggregate(update(h, i))
        if not spec.is_output:
            h = relu(h)

    logits = softmax(h) if apply_softmax else h
    return QuantizedForwardResult(logits=logits, counters=counters)
