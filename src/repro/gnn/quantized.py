"""Functional quantized GNN forward pass on the emulated Tensor Core.

Runs a :class:`~repro.gnn.models.GNNModel` over a subgraph batch with every
matrix product executed as a packed bit-GEMM through
:class:`~repro.tc.kernel.BitGemmKernel` — the same arithmetic the CUDA
kernels perform — while carrying affine dequantization corrections so the
result is a genuine approximation of the fp32 reference (error shrinks as
bitwidth grows; the test-suite asserts this convergence).

Affine algebra: a quantized tensor represents ``real ≈ scale * q + c`` with
``c = alpha_min + scale / 2`` (mid-bucket).  For a product of two such
tensors,

.. math::

   A B ≈ s_a s_b\\, (q_a q_b) + s_a c_b\\, r_a 1^T + c_a s_b\\, 1 g_b^T
         + K c_a c_b

where ``r_a`` is the row-sum vector of ``q_a`` and ``g_b`` the column-sum
of ``q_b`` — rank-1 epilogue terms the fused kernel absorbs (paper §4.5).
Only the ``q_a q_b`` term touches the Tensor Core.

Serving hooks
-------------
Two ingredients of the forward pass are invariant across requests and are
exposed so a session (:mod:`repro.serving`) can build them once and reuse
them:

* :class:`PackedLayerWeight` — a layer's weight matrix quantized,
  bit-packed row-wise, with its affine column-sum epilogue precomputed.
  :func:`pack_layer_weight` builds one; ``packed_weights=`` feeds them in.
* :class:`ActivationCalibration` — per-site activation quantization
  parameters frozen on first touch.  With a shared calibration, a batched
  forward and the equivalent per-request forwards produce *bit-identical*
  logits (the block-diagonal adjacency keeps members independent, so the
  only coupling is through calibration — which freezing removes).
* :class:`PackedAdjacency` — a batch's adjacency densified, 1-bit packed,
  tile-censused (:class:`~repro.tc.kernel.TileSkipPlan`) and degree-summed
  once.  :func:`pack_batch_adjacency` builds one; ``packed_adjacency=``
  feeds it in so a serving session that sees the same batch twice packs and
  ballots the operand once.

When none is supplied the behavior is the original one-shot path: weights
and the adjacency are re-packed per call and activations calibrate per
tensor.

Plan/execute split
------------------
The forward pass is structured as *compile once, replay many*: a
:class:`~repro.plan.ir.ExecutionPlan` (built by
:func:`repro.plan.ir.compile_forward_plan`) records each layer's GEMM
shapes, bitwidths, quantize sites, pack/census cache keys and the backend
resolved for every product; :func:`execute_forward_plan` replays a plan on
a batch, resolving request-invariant artifacts (packed weights, the packed
adjacency) through a :class:`~repro.plan.cache.PlanCache` when one is
supplied.  :func:`quantized_forward` is the eager compatibility shim —
compile + execute in one call — and its ``packed_weights=`` /
``packed_adjacency=`` arguments simply seed the corresponding plan-node
artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.bitgemm import Engine
from ..core.bitpack import PackedBits, pack_matrix
from ..core.quantization import QuantParams, calibrate, quantize
from ..errors import BitwidthError, ConfigError, ShapeError
from ..graph.batching import SubgraphBatch
from ..plan.ir import ExecutionPlan, GemmSpec, GemmStep, QuantizeStep, compile_forward_plan
from ..tc.counters import KernelCounters
from ..tc.kernel import BitGemmKernel, KernelConfig, TileSkipPlan, plan_tile_skip
from .activations import relu, softmax
from .models import GNNModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..plan.cache import PlanCache

__all__ = [
    "ActivationCalibration",
    "PackedAdjacency",
    "PackedLayerWeight",
    "PhaseTiming",
    "QuantizedForwardResult",
    "StepTiming",
    "execute_forward_plan",
    "pack_batch_adjacency",
    "pack_layer_weight",
    "quantize_model_weights",
    "quantized_forward",
]


@dataclass(frozen=True)
class PhaseTiming:
    """Measured wall-clock of one execution phase of a forward pass.

    Where :class:`StepTiming` covers only the backend-dependent kernel
    dispatch (the autotuning sample), phase timings cover *everything* a
    forward pass spends time on — materializing features, quantizing,
    packing, censusing, the GEMM itself, affine epilogues and
    activations — so :mod:`repro.perf` can attribute (nearly) all of a
    session's measured wall-clock to named plan-step phases.  ``gemm``
    phases reuse the exact elapsed value of the corresponding
    :class:`StepTiming`, so backend attribution and phase attribution
    never disagree about the kernel seconds.  (The one exception: when a
    step recovered on a fallback backend, the ``gemm`` phase covers the
    whole attempt window while the :class:`StepTiming` sample covers only
    the winning attempt — failed attempts must not bias the winner's
    autotune cell.)
    """

    #: Phase name: ``materialize``, ``quantize``, ``pack``, ``census``,
    #: ``gemm``, ``epilogue`` or ``activation``.
    phase: str
    #: The step role the phase belongs to (``aggregate``/``update``), or
    #: ``forward`` for per-pass phases like materialization.
    role: str
    #: Model layer index, or ``-1`` for phases outside any layer.
    layer: int
    seconds: float


@dataclass(frozen=True)
class StepTiming:
    """Measured wall-clock of one executed plan step's bit-GEMM.

    The timing window covers exactly the backend-dependent work (the
    kernel dispatch on already-packed operands), which makes each executed
    step a valid autotuning sample: the serving engine feeds these into
    the dispatcher's :class:`~repro.plan.autotune.DispatchTable`, so every
    warm replay sharpens future dispatch decisions for free.
    """

    spec: GemmSpec
    backend: str
    seconds: float


@dataclass(frozen=True)
class QuantizedForwardResult:
    """Logits plus the kernel events the batch generated."""

    logits: np.ndarray
    counters: list[KernelCounters]
    #: One measured per-GEMM timing per executed plan step, in execution
    #: order (parallel to ``counters``).  When a step recovered on a
    #: fallback backend, ``backend`` names the backend that actually
    #: executed, not the one the plan chose.
    timings: tuple[StepTiming, ...] = ()
    #: Full phase attribution of the pass's wall-clock (quantize / pack /
    #: census / gemm / epilogue / ... — see :class:`PhaseTiming`); empty
    #: for paths that do not collect phases.
    phases: tuple[PhaseTiming, ...] = ()
    #: One ``(step role, failed backend, executed backend)`` triple per
    #: failed GEMM attempt that a fallback recovered (see
    #: ``repro.serving.supervision``); empty on a fault-free pass.
    recoveries: tuple[tuple[str, str, str], ...] = ()

    @property
    def total_counters(self) -> KernelCounters:
        total = KernelCounters()
        for c in self.counters:
            total.merge(c)
        return total


def _mid_offset(params: QuantParams) -> float:
    """Constant ``c`` of the affine code model ``real ≈ scale*q + c``."""
    return params.alpha_min + params.scale / 2.0


@dataclass(frozen=True)
class PackedLayerWeight:
    """One layer's weights, quantized and bit-packed once per session.

    The paper pre-computes and caches the weight bit-decomposition because
    the same ``W`` serves every subgraph at a layer (§3.2 last paragraph).
    Bundles everything the update GEMM needs from the right operand:

    Attributes
    ----------
    packed:
        Row-wise compressed bit planes of the quantized codes — the
        kernel's right operand, built once instead of per request.
    params:
        Affine parameters of the weight quantization.
    col_sums:
        ``(1, out_dim)`` column sums of the integer codes — the rank-1
        affine epilogue term, also request-invariant.
    """

    packed: PackedBits
    params: QuantParams
    col_sums: np.ndarray

    @property
    def bits(self) -> int:
        return self.params.bits

    @property
    def nbytes(self) -> int:
        """Packed plane storage (what a serving cache budgets)."""
        return self.packed.nbytes + self.col_sums.nbytes


def pack_layer_weight(weight: np.ndarray, bits: int) -> PackedLayerWeight:
    """Quantize and row-pack one weight matrix for reuse across requests."""
    if not 1 <= bits <= 32:
        raise BitwidthError(f"weight bits must be in [1, 32], got {bits}")
    qw, pw = quantize(weight, bits=bits)
    return PackedLayerWeight(
        packed=pack_matrix(qw, bits, layout="row"),
        params=pw,
        col_sums=qw.sum(axis=0, dtype=np.float64)[None, :],
    )


@dataclass(frozen=True)
class PackedAdjacency:
    """A batch's aggregation operand, built once and reusable across layers
    and (via a serving cache) across repeat executions of the same batch.

    Bundles everything the aggregation GEMM needs from the left operand:

    Attributes
    ----------
    packed:
        1-bit column-compressed adjacency planes (self loops included) —
        the kernel's left operand.
    plan:
        Non-zero tile census of the packed planes (§4.3).  Feeds the
        kernel's measured skip counters and tells the ``sparse`` host
        engine exactly which tiles to execute.
    degrees:
        ``(n, 1)`` float64 row sums (with self loops) — the rank-1 affine
        epilogue of the aggregation product.
    """

    packed: PackedBits
    plan: TileSkipPlan
    degrees: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.packed.logical_vectors

    @property
    def nonzero_fraction(self) -> float:
        """Fraction of 8x128 tiles a jumping/sparse execution processes."""
        return self.plan.nonzero_fraction

    @property
    def nbytes(self) -> int:
        """Packed storage a serving cache budgets for this entry."""
        return (
            self.packed.nbytes
            + self.degrees.nbytes
            + sum(mask.nbytes for mask in self.plan.masks)
        )


def pack_batch_adjacency(batch: SubgraphBatch) -> PackedAdjacency:
    """Densify, bit-pack and tile-census one batch's adjacency (with self
    loops) — the per-batch analogue of :func:`pack_layer_weight`.

    Packing, census, and degree reduction run as one fused compiled pass
    (:func:`repro.codegen.fused_pack_adjacency`) instead of three
    separate walks over the densified matrix; the result is bit-identical
    to the unfused ``pack_matrix`` + ``plan_tile_skip`` + row-sum
    pipeline, which the codegen differential tests assert.
    """
    from ..codegen import fused_pack_adjacency

    adjacency = batch.dense_adjacency(self_loops=True).astype(np.int64)
    packed, plan, degrees = fused_pack_adjacency(adjacency)
    return PackedAdjacency(packed=packed, plan=plan, degrees=degrees)


class ActivationCalibration:
    """Activation quantization parameters, frozen per site on first touch.

    A *site* identifies one quantize call in the forward pass (e.g.
    ``"L0/agg"`` — layer 0's aggregation input).  The first tensor seen at a
    site calibrates its :class:`~repro.core.quantization.QuantParams`; every
    later tensor reuses them, i.e. static post-calibration quantization.
    Sessions share one instance so results are reproducible across batch
    shapes.
    """

    def __init__(self) -> None:
        self._sites: dict[tuple[str, int], QuantParams] = {}

    def __len__(self) -> int:
        return len(self._sites)

    @property
    def sites(self) -> dict[tuple[str, int], QuantParams]:
        """Read-only view of the calibrated ``(site, bits) -> params`` map."""
        return dict(self._sites)

    def quantize(
        self, site: str, values: np.ndarray, bits: int
    ) -> tuple[np.ndarray, QuantParams]:
        """Quantize ``values`` with this site's frozen parameters."""
        key = (site, bits)
        params = self._sites.get(key)
        if params is None:
            params = calibrate(values, bits)
            self._sites[key] = params
        codes, _ = quantize(values, params)
        return codes, params


def quantize_model_weights(
    model: GNNModel, bits: int
) -> list[tuple[np.ndarray, QuantParams]]:
    """Quantize every layer's weights once (cached across subgraphs).

    The raw ``(codes, params)`` form; :func:`pack_layer_weight` is the
    packed form a serving session caches.
    """
    if not 1 <= bits <= 32:
        raise BitwidthError(f"weight bits must be in [1, 32], got {bits}")
    return [quantize(w, bits=bits) for w in model.weights]


def _dispatch_gemm(
    kernel: BitGemmKernel,
    a,
    b,
    *,
    engine: Engine,
    plan,
    registry,
    recovery,
    spec: GemmSpec | None,
    role: str,
):
    # One plan step's GEMM dispatch, optionally wrapped in per-step
    # fallback recovery.  Returns (result, executed backend, recovery
    # triples, seconds of the winning attempt).  The winning-attempt
    # window keeps autotune samples unbiased by failed attempts.
    if recovery is None or not isinstance(engine, str):
        start = time.perf_counter()
        res = kernel.run(a, b, engine=engine, plan=plan, registry=registry)
        return res, engine, (), time.perf_counter() - start

    win: dict[str, float] = {}

    def attempt(name: str):
        start = time.perf_counter()
        out = kernel.run(a, b, engine=name, plan=plan, registry=registry)
        win["s"] = time.perf_counter() - start
        return out

    bits_a = spec.bits_a if spec is not None else 1
    res, executed, failed = recovery.run(
        attempt, engine, bits_a=bits_a, detail=role
    )
    triples = tuple((role, name, executed) for name in failed)
    return res, executed, triples, win["s"]


def _affine_product(
    q_left: np.ndarray,
    p_left: QuantParams,
    weight: PackedLayerWeight,
    kernel: BitGemmKernel,
    counters: list[KernelCounters],
    engine: Engine,
    registry=None,
    timings: list[StepTiming] | None = None,
    spec: GemmSpec | None = None,
    phases: list[PhaseTiming] | None = None,
    layer: int = -1,
    recovery=None,
    recoveries: list[tuple[str, str, str]] | None = None,
) -> np.ndarray:
    """Full affine-corrected product of a quantized matrix and a packed weight."""
    k = q_left.shape[1]
    if weight.packed.logical_k != k:
        raise ShapeError(
            f"inner dims differ: {q_left.shape} x {weight.packed.logical_shape}"
        )
    start = time.perf_counter()
    packed_l = pack_matrix(q_left, p_left.bits, layout="col")
    packed_at = time.perf_counter()
    # Ballot a 1-bit left operand *outside* the timing window (mirroring
    # kernel.run's internal census) so the StepTiming sample covers the
    # same census-amortized work the offline autotuner measures — mixing
    # census-inclusive and census-exclusive samples in one table cell
    # would bias its median against whichever backend actually executed.
    plan = (
        plan_tile_skip(packed_l)
        if packed_l.bits == 1 and kernel.config.zero_tile_jumping
        else None
    )
    census_at = time.perf_counter()
    res, executed, recovered, win_s = _dispatch_gemm(
        kernel, packed_l, weight.packed, engine=engine, plan=plan,
        registry=registry, recovery=recovery, spec=spec,
        role=f"update/L{layer}",
    )
    gemm_s = time.perf_counter() - census_at
    if timings is not None and spec is not None and isinstance(executed, str):
        # Fault-free steps reuse the phase window exactly (backend and
        # phase attribution must agree); recovered steps report only the
        # winning attempt so failures never bias the autotune sample.
        timings.append(StepTiming(spec, executed, win_s if recovered else gemm_s))
    if recoveries is not None and recovered:
        recoveries.extend(recovered)
    counters.append(res.counters)
    epilogue_at = time.perf_counter()
    s_l, c_l = p_left.scale, _mid_offset(p_left)
    s_r, c_r = weight.params.scale, _mid_offset(weight.params)
    row_sums = q_left.sum(axis=1, dtype=np.float64)[:, None]
    out = (
        s_l * s_r * res.output
        + s_l * c_r * row_sums
        + c_l * s_r * weight.col_sums
        + k * c_l * c_r
    ).astype(np.float64)
    if phases is not None:
        phases.append(PhaseTiming("pack", "update", layer, packed_at - start))
        phases.append(PhaseTiming("census", "update", layer, census_at - packed_at))
        phases.append(PhaseTiming("gemm", "update", layer, gemm_s))
        phases.append(
            PhaseTiming(
                "epilogue", "update", layer, time.perf_counter() - epilogue_at
            )
        )
    return out


def execute_forward_plan(
    plan: ExecutionPlan,
    model: GNNModel,
    batch: SubgraphBatch,
    *,
    packed_weights: list[PackedLayerWeight] | None = None,
    packed_adjacency: PackedAdjacency | None = None,
    artifacts: "PlanCache | None" = None,
    calibration: ActivationCalibration | None = None,
    kernel_config: KernelConfig | None = None,
    apply_softmax: bool = False,
    registry=None,
    recovery=None,
) -> QuantizedForwardResult:
    """Replay a compiled :class:`~repro.plan.ir.ExecutionPlan` on one batch.

    ``registry`` resolves the plan's backend names against a non-default
    :class:`~repro.plan.registry.BackendRegistry` — pass the same registry
    the plan was compiled with.

    ``recovery`` (a ``repro.serving.supervision.StepRecovery``-shaped
    object, duck-typed to keep this module serving-agnostic) retries a
    GEMM step whose backend raised a retryable error on that backend's
    fallback chain; every engine is bit-identical to the oracle, so a
    recovered step changes cost, never logits.  Recovered steps are
    reported in :attr:`QuantizedForwardResult.recoveries`.

    Request-invariant operands hang off the plan's pack/census nodes: when
    an ``artifacts`` cache is supplied, each node's artifact (a
    :class:`PackedLayerWeight` per update step, one :class:`PackedAdjacency`
    for the aggregation steps) is resolved through it under the node's
    content key — so a serving session's replayed rounds are pure cache
    traffic.  Explicit ``packed_weights``/``packed_adjacency`` seed the
    artifacts directly (the eager shim's path); with neither, operands are
    rebuilt transiently, reproducing the original one-shot behavior.

    A plan compiled for a different shape refuses to run
    (:class:`~repro.errors.ShapeError`): a stale plan is an error, never a
    silent wrong answer.
    """
    sig = plan.signature
    if len(plan.layers) != model.num_layers:
        raise ConfigError(
            f"plan has {len(plan.layers)} layers, model has {model.num_layers}"
        )
    if batch.num_nodes != sig.num_nodes:
        raise ShapeError(
            f"plan compiled for {sig.num_nodes} nodes cannot execute a "
            f"{batch.num_nodes}-node batch; compile a fresh plan"
        )
    kernel = BitGemmKernel(kernel_config or KernelConfig())
    counters: list[KernelCounters] = []
    timings: list[StepTiming] = []
    phases: list[PhaseTiming] = []
    recoveries: list[tuple[str, str, str]] = []

    def resolve(key, builder):
        if artifacts is not None and key is not None:
            return artifacts.get_or_build(key, builder)
        return builder()

    if packed_adjacency is None:
        packed_adjacency = resolve(
            plan.layers[0].aggregate.pack_a.cache_key,
            lambda: pack_batch_adjacency(batch),
        )
    if packed_adjacency.num_nodes != batch.num_nodes:
        raise ShapeError(
            f"packed adjacency covers {packed_adjacency.num_nodes} nodes, "
            f"batch has {batch.num_nodes}"
        )

    if packed_weights is None:
        packed_weights = [
            resolve(
                layer.update.pack_b.cache_key,
                lambda w=model.weights[layer.index], bits=layer.update.spec.bits_b: (
                    pack_layer_weight(w, bits)
                ),
            )
            for layer in plan.layers
        ]
    elif len(packed_weights) != model.num_layers:
        raise ConfigError(
            f"expected {model.num_layers} packed weights, got {len(packed_weights)}"
        )

    packed_adj = packed_adjacency.packed
    adj_plan = packed_adjacency.plan
    degrees = packed_adjacency.degrees

    start = time.perf_counter()
    h = batch.features().astype(np.float64)
    phases.append(
        PhaseTiming("materialize", "forward", -1, time.perf_counter() - start)
    )
    if h.shape[1] != sig.feature_dim:
        raise ShapeError(
            f"plan compiled for feature_dim={sig.feature_dim} cannot execute "
            f"a batch with {h.shape[1]} features; compile a fresh plan"
        )

    def quantize_at(
        step: QuantizeStep, x_real: np.ndarray
    ) -> tuple[np.ndarray, QuantParams]:
        if calibration is None:
            return quantize(x_real, bits=step.bits)
        return calibration.quantize(step.site, x_real, step.bits)

    def aggregate(x_real: np.ndarray, step: GemmStep, layer: int) -> np.ndarray:
        """``Â @ x`` with the adjacency exact (1-bit) and x quantized."""
        start = time.perf_counter()
        qx, px = quantize_at(step.quantize_b, x_real)
        quantized_at = time.perf_counter()
        packed_x = pack_matrix(qx, step.quantize_b.bits, layout="row")
        packed_at = time.perf_counter()
        res, executed, recovered, win_s = _dispatch_gemm(
            kernel, packed_adj, packed_x, engine=step.backend, plan=adj_plan,
            registry=registry, recovery=recovery, spec=step.spec,
            role=f"aggregate/L{layer}",
        )
        gemm_s = time.perf_counter() - packed_at
        timings.append(
            StepTiming(step.spec, executed, win_s if recovered else gemm_s)
        )
        recoveries.extend(recovered)
        counters.append(res.counters)
        # Â is exact binary: real = s_x * (Â q_x) + c_x * degree.
        epilogue_at = time.perf_counter()
        out = px.scale * res.output + _mid_offset(px) * degrees
        phases.append(
            PhaseTiming("quantize", "aggregate", layer, quantized_at - start)
        )
        phases.append(
            PhaseTiming("pack", "aggregate", layer, packed_at - quantized_at)
        )
        phases.append(PhaseTiming("gemm", "aggregate", layer, gemm_s))
        phases.append(
            PhaseTiming(
                "epilogue", "aggregate", layer, time.perf_counter() - epilogue_at
            )
        )
        return out

    def update(x_real: np.ndarray, step: GemmStep, layer: int) -> np.ndarray:
        """``x @ W + b`` with both operands quantized."""
        start = time.perf_counter()
        qx, px = quantize_at(step.quantize_a, x_real)
        phases.append(
            PhaseTiming("quantize", "update", layer, time.perf_counter() - start)
        )
        out = _affine_product(
            qx, px, packed_weights[layer], kernel, counters, step.backend,
            registry=registry, timings=timings, spec=step.spec,
            phases=phases, layer=layer, recovery=recovery,
            recoveries=recoveries,
        )
        start = time.perf_counter()
        out = out + model.biases[layer]
        phases.append(
            PhaseTiming("epilogue", "update", layer, time.perf_counter() - start)
        )
        return out

    for layer in plan.layers:
        if sig.aggregate_first:
            h = update(
                aggregate(h, layer.aggregate, layer.index),
                layer.update,
                layer.index,
            )
        else:
            h = aggregate(
                update(h, layer.update, layer.index),
                layer.aggregate,
                layer.index,
            )
        if not layer.is_output:
            start = time.perf_counter()
            h = relu(h)
            phases.append(
                PhaseTiming(
                    "activation", "forward", layer.index,
                    time.perf_counter() - start,
                )
            )

    start = time.perf_counter()
    logits = softmax(h) if apply_softmax else h
    if apply_softmax:
        phases.append(
            PhaseTiming("activation", "forward", -1, time.perf_counter() - start)
        )
    return QuantizedForwardResult(
        logits=logits, counters=counters, timings=tuple(timings),
        phases=tuple(phases), recoveries=tuple(recoveries),
    )


def quantized_forward(
    model: GNNModel,
    batch: SubgraphBatch,
    *,
    feature_bits: int = 4,
    weight_bits: int | None = None,
    kernel_config: KernelConfig | None = None,
    apply_softmax: bool = False,
    packed_weights: list[PackedLayerWeight] | None = None,
    packed_adjacency: PackedAdjacency | None = None,
    calibration: ActivationCalibration | None = None,
    engine: Engine = "auto",
    plan: ExecutionPlan | None = None,
    artifacts: "PlanCache | None" = None,
    registry=None,
) -> QuantizedForwardResult:
    """Run a quantized forward pass over one subgraph batch.

    The eager entry point: compiles an :class:`~repro.plan.ir.ExecutionPlan`
    for the batch's shape (unless a pre-compiled ``plan`` is given) and
    executes it via :func:`execute_forward_plan`.  A serving session skips
    this shim and replays cached plans directly.

    Parameters
    ----------
    feature_bits, weight_bits:
        Activation / weight bitwidths (weights default to the feature
        setting, as in the paper's sweeps).
    kernel_config:
        Zero-tile jumping and reuse switches for the emulated kernel.
    packed_weights:
        Pre-packed per-layer weights (see :func:`pack_layer_weight`),
        seeded as the plan's per-layer weight artifacts so packing happens
        once, not per request.  ``weight_bits`` is ignored when given.
    packed_adjacency:
        Pre-packed batch adjacency with its tile-skip plan (see
        :func:`pack_batch_adjacency`), seeded as the plan's adjacency
        artifact.  Must describe exactly this ``batch``.
    calibration:
        Shared :class:`ActivationCalibration`; omit for the one-shot
        per-tensor calibration behavior.
    engine:
        Bit-GEMM backend name or per-product selector; resolved through
        the backend registry once per GEMM at plan-compile time.
    plan:
        A pre-compiled plan to replay (skips compilation; must describe
        this batch's shape).
    artifacts:
        Optional :class:`~repro.plan.cache.PlanCache` the plan's operand
        artifacts are resolved through.

    Returns the float logits (full-precision output layer, paper §4.5) and
    the per-kernel event counters.
    """
    if plan is None:
        plan = compile_forward_plan(
            model,
            num_nodes=batch.num_nodes,
            feature_bits=feature_bits,
            weight_bits=weight_bits,
            weight_bits_per_layer=(
                [w.bits for w in packed_weights]
                if packed_weights is not None
                and len(packed_weights) == model.num_layers
                else None
            ),
            engine=engine,
            registry=registry,
        )
    return execute_forward_plan(
        plan,
        model,
        batch,
        packed_weights=packed_weights,
        packed_adjacency=packed_adjacency,
        artifacts=artifacts,
        calibration=calibration,
        kernel_config=kernel_config,
        apply_softmax=apply_softmax,
        registry=registry,
    )
