"""Quantization-aware training (QAT) for the Table 2 accuracy study.

The paper trains GCN models with quantization-aware training and reports
test accuracy at {32, 16, 8, 4, 2} bits on ogbn-arxiv / ogbn-products.  We
reproduce the protocol on the synthetic stand-ins: a 2-layer GCN trained
full-batch with *fake quantization* (quantize → dequantize in the forward
pass) on weights and activations, gradients flowing through the rounding
via the straight-through estimator (STE).

The expected shape, not the absolute numbers: accuracy is flat down to
~8 bits, dips at 4, and collapses at 2 (paper Table 2: 0.791 → 0.783 →
0.739 → 0.620 on ogbn-products).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError
from ..graph.csr import CSRGraph
from .activations import accuracy, cross_entropy, cross_entropy_grad, relu, relu_grad

__all__ = ["QATConfig", "TrainResult", "fake_quantize", "train_qgnn"]


def fake_quantize(x: np.ndarray, bits: int) -> np.ndarray:
    """Quantize-dequantize at ``bits`` (identity at >= 32 bits).

    Per-tensor min/max calibration, mid-rise reconstruction — the forward
    half of QAT.  The backward half (STE) is simply using this output's
    gradient as the input's gradient, which the trainer below does.
    """
    if bits >= 32:
        return x
    lo = float(x.min())
    hi = float(x.max())
    if hi <= lo:
        return x
    scale = (hi - lo) / (1 << bits)
    q = np.clip(np.floor((x - lo) / scale), 0, (1 << bits) - 1)
    return ((q + 0.5) * scale + lo).astype(x.dtype)


@dataclass(frozen=True)
class QATConfig:
    """Hyper-parameters of the QAT run."""

    bits: int = 32
    hidden_dim: int = 64
    epochs: int = 120
    lr: float = 0.01
    weight_decay: float = 5e-4
    train_fraction: float = 0.6
    val_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise ConfigError(f"bits must be in [1, 32], got {self.bits}")
        if self.epochs < 1 or self.hidden_dim < 1:
            raise ConfigError("epochs and hidden_dim must be positive")
        if not 0 < self.train_fraction + self.val_fraction < 1:
            raise ConfigError("train+val fractions must leave a test split")


@dataclass
class TrainResult:
    """Learning curves and final metrics of one QAT run."""

    config: QATConfig
    test_accuracy: float
    val_accuracy: float
    train_losses: list[float] = field(repr=False)
    weights: list[np.ndarray] = field(repr=False)


def _normalized_adjacency(graph: CSRGraph) -> sp.csr_matrix:
    """Row-normalized ``D^-1 (A + I)`` mean-aggregation operator."""
    n = graph.num_nodes
    adj = graph.to_scipy() + sp.eye(n, format="csr")
    inv_deg = 1.0 / np.maximum(np.asarray(adj.sum(axis=1)).ravel(), 1.0)
    return sp.diags(inv_deg) @ adj


def train_qgnn(graph: CSRGraph, config: QATConfig | None = None) -> TrainResult:
    """Train a 2-layer GCN with fake-quantized weights and activations.

    Full-batch Adam; the train/val/test split is a seeded random node
    partition.  Returns the best-validation test accuracy, mirroring the
    usual OGB evaluation protocol.
    """
    config = config or QATConfig()
    if graph.features is None or graph.labels is None:
        raise ConfigError("QAT needs a graph with features and labels")
    rng = np.random.default_rng(config.seed)
    n = graph.num_nodes
    num_classes = int(graph.labels.max()) + 1

    perm = rng.permutation(n)
    n_train = int(n * config.train_fraction)
    n_val = int(n * config.val_fraction)
    train_idx = perm[:n_train]
    val_idx = perm[n_train : n_train + n_val]
    test_idx = perm[n_train + n_val :]

    x = graph.features.astype(np.float64)
    y = graph.labels
    a_hat = _normalized_adjacency(graph)

    d_in, d_h = x.shape[1], config.hidden_dim
    limit1 = np.sqrt(6.0 / (d_in + d_h))
    limit2 = np.sqrt(6.0 / (d_h + num_classes))
    w1 = rng.uniform(-limit1, limit1, size=(d_in, d_h))
    w2 = rng.uniform(-limit2, limit2, size=(d_h, num_classes))

    # Adam state.
    m1 = np.zeros_like(w1)
    v1 = np.zeros_like(w1)
    m2 = np.zeros_like(w2)
    v2 = np.zeros_like(w2)
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    # The aggregated input never changes: precompute Â X once.
    u1 = np.asarray(a_hat @ fake_quantize(x, config.bits))

    losses: list[float] = []
    best_val = -1.0
    best_test = 0.0
    for epoch in range(1, config.epochs + 1):
        # ---- forward (fake-quantized) ---------------------------------- #
        w1_q = fake_quantize(w1, config.bits)
        w2_q = fake_quantize(w2, config.bits)
        s1 = u1 @ w1_q
        h1 = relu(s1)
        h1_q = fake_quantize(h1, config.bits)
        u2 = np.asarray(a_hat @ h1_q)
        logits = u2 @ w2_q

        losses.append(cross_entropy(logits[train_idx], y[train_idx]))

        # ---- backward (STE through every fake_quantize) ----------------- #
        d_logits = np.zeros_like(logits)
        d_logits[train_idx] = cross_entropy_grad(logits[train_idx], y[train_idx])
        g_w2 = u2.T @ d_logits + config.weight_decay * w2
        d_u2 = d_logits @ w2_q.T
        d_h1 = np.asarray(a_hat.T @ d_u2)  # STE: d(h1_q) -> d(h1)
        d_s1 = d_h1 * relu_grad(s1)
        g_w1 = u1.T @ d_s1 + config.weight_decay * w1

        # ---- Adam -------------------------------------------------------- #
        for w, g, m, v in ((w1, g_w1, m1, v1), (w2, g_w2, m2, v2)):
            m *= beta1
            m += (1 - beta1) * g
            v *= beta2
            v += (1 - beta2) * g * g
            m_hat = m / (1 - beta1**epoch)
            v_hat = v / (1 - beta2**epoch)
            w -= config.lr * m_hat / (np.sqrt(v_hat) + eps)

        # ---- track best-val test accuracy -------------------------------- #
        val_acc = accuracy(logits[val_idx], y[val_idx])
        if val_acc > best_val:
            best_val = val_acc
            best_test = accuracy(logits[test_idx], y[test_idx])

    return TrainResult(
        config=config,
        test_accuracy=best_test,
        val_accuracy=best_val,
        train_losses=losses,
        weights=[w1, w2],
    )
